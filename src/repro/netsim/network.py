"""Datagram network between simulated hosts.

The model matches what the 1988 implementation assumed of UDP/IP:

* unreliable, unauthenticated datagrams — anybody can read them (taps),
  modify or drop them (interceptors), or forge the source address
  (:meth:`Network.inject`), which is precisely the attacker the paper
  designs against;
* synchronous request/response on top (:meth:`Host.rpc`), standing in
  for the send-and-wait UDP exchanges of the real clients;
* hosts can be down (master failure in Figures 10/11), and each hop can
  cost simulated latency.

Delivery is **event-driven**: every datagram leg is an event on the
network's :class:`~repro.runtime.EventScheduler` (``net.runtime``), so
packets are genuinely *in flight* — a busy server can queue arrivals
(see :class:`DeferredReply`) while other traffic proceeds, which is what
makes the Section 9 busy-hour concurrency modelable at all.  The
synchronous :meth:`Host.rpc` API survives unchanged on top: it posts the
request and *pumps* the scheduler until its reply resolves, so callers
(and nested callers — a handler doing its own RPC) never notice the
machinery.  :meth:`Network.rpc_async` exposes the non-blocking form for
open-loop load generators.

Traffic statistics are kept per destination port so the benchmarks can
report message counts per service, e.g. KDC load at Athena scale.  They
live in the network's :class:`repro.obs.MetricsRegistry` (``net.metrics``,
the single source of truth for every instrumented layer); the legacy
``net.stats["port:750"]``-style mapping is a read-only view over it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.netsim.address import IPAddress
from repro.netsim.clock import HostClock, SimClock
from repro.netsim.faults import FaultPlane, Partition, Verdict
from repro.obs import AuditLog, MetricsRegistry, Tracer
from repro.obs.tracing import Span, TraceContext
from repro.runtime import EventScheduler


class NetworkError(Exception):
    """Base class for simulated network failures."""


class Unreachable(NetworkError):
    """The destination host is down, unknown, or the packet was lost."""


class HostDown(Unreachable):
    """The destination host itself is down — a crash, not a lossy wire.

    Subclassing :class:`Unreachable` keeps every existing retry/failover
    path working unchanged, while callers that care (scenario SLO
    verdicts, the burst driver) can tell "KDC dead" from "KDC slow"."""


class NoSuchService(NetworkError):
    """The destination host is up but nothing listens on the port."""


class Datagram:
    """One packet on the wire.  Attackers see exactly this — except
    ``trace``, which is **out-of-band simulation metadata**: the
    propagated :class:`repro.obs.TraceContext` of the sending span.  It
    is not wire bytes (payloads and the golden vectors are untouched),
    and it is not attacker-visible or forgeable — hand-crafted or
    replayed datagrams travel context-less, which is exactly how they
    show up in the trace tree: as orphans.

    Slotted by hand: datagrams are the highest-volume allocation in any
    simulation.
    """

    __slots__ = ("src", "src_port", "dst", "dst_port", "payload", "trace")

    def __init__(
        self,
        src: IPAddress,
        src_port: int,
        dst: IPAddress,
        dst_port: int,
        payload: bytes,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.payload = payload
        self.trace = trace

    def reply_with(self, payload: bytes) -> "Datagram":
        """Build the response datagram travelling the reverse path (the
        reply leg stays in the request's trace)."""
        return Datagram(
            src=self.dst,
            src_port=self.dst_port,
            dst=self.src,
            dst_port=self.src_port,
            payload=payload,
            trace=self.trace,
        )

    def __eq__(self, other: object) -> bool:
        """Wire-field equality only: two datagrams carrying the same
        bytes over the same path are the same packet to any observer,
        whatever sim-side metadata rides along."""
        if not isinstance(other, Datagram):
            return NotImplemented
        return (
            self.src == other.src
            and self.src_port == other.src_port
            and self.dst == other.dst
            and self.dst_port == other.dst_port
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash(
            (self.src, self.src_port, self.dst, self.dst_port, self.payload)
        )

    def __repr__(self) -> str:
        return (
            f"Datagram({self.src}:{self.src_port} -> "
            f"{self.dst}:{self.dst_port}, {len(self.payload)}B)"
        )


class DeferredReply:
    """A handler's promise to answer later.

    A queued service loop (the KDC's worker pool) cannot answer at
    arrival time: the request sits in its inbound queue until a worker
    batch completes.  Such a handler returns a :class:`DeferredReply`
    instead of bytes; the network wires the reply leg to it, and the
    service calls :meth:`resolve` when the work finishes —
    ``resolve(None)`` means the reply was lost (queue dropped in a
    crash, say), which the sender experiences as a timeout.
    """

    __slots__ = ("_payload", "_resolved", "_sink")

    def __init__(self) -> None:
        self._payload: Optional[bytes] = None
        self._resolved = False
        self._sink: Optional[Callable[[Optional[bytes]], None]] = None

    @property
    def resolved(self) -> bool:
        return self._resolved

    def resolve(self, payload: Optional[bytes]) -> None:
        """Deliver the (possibly absent) reply; first call wins."""
        if self._resolved:
            return
        self._resolved = True
        self._payload = payload
        if self._sink is not None:
            self._sink(payload)

    def _bind(self, sink: Callable[[Optional[bytes]], None]) -> None:
        """Network-side: attach the reply leg (fires now if already
        resolved)."""
        self._sink = sink
        if self._resolved:
            sink(self._payload)


class PendingRpc:
    """The caller's view of one in-flight exchange.

    Resolved exactly once: with reply bytes, or with a transport error.
    ``one_way`` exchanges (:meth:`Host.send`, :meth:`Network.inject`)
    resolve at handler completion with the handler's raw return value
    and never schedule a reply leg.
    """

    __slots__ = ("reply", "error", "done", "one_way", "resolved_at")

    def __init__(self, one_way: bool = False) -> None:
        self.reply: Optional[bytes] = None
        self.error: Optional[NetworkError] = None
        self.done = False
        self.one_way = one_way
        self.resolved_at: Optional[float] = None

    def _resolve(self, payload: Optional[bytes], now: float) -> None:
        if self.done:
            return
        self.done = True
        self.reply = payload
        self.resolved_at = now

    def _fail(self, error: NetworkError, now: float) -> None:
        if self.done:
            return
        self.done = True
        self.error = error
        self.resolved_at = now


#: A bound service: takes the request datagram, returns reply bytes,
#: None (no reply), or a :class:`DeferredReply` (answer later).
Handler = Callable[[Datagram], object]
#: A passive tap: sees a copy of every datagram.
Tap = Callable[[Datagram], None]
#: An active interceptor: may rewrite or drop (return None) any datagram.
Interceptor = Callable[[Datagram], Optional[Datagram]]

#: Ephemeral source port used for client sides of RPCs.
EPHEMERAL_PORT = 0

#: Simulated seconds a synchronous caller pumps before giving up on a
#: reply that is never coming (e.g. a queued request lost in a crash).
RPC_TIMEOUT = 30.0


class Host:
    """A machine on the network: an address, a clock, and bound services."""

    def __init__(
        self,
        network: "Network",
        name: str,
        address: IPAddress,
        clock: HostClock,
    ) -> None:
        self.network = network
        self.name = name
        self.address = address
        self.clock = clock
        self.up = True
        self._services: Dict[int, Handler] = {}
        #: Attached :class:`repro.core.service.Service` instances, in
        #: attach order; crash/restart lifecycle hooks fan out to these.
        self.services: List[object] = []

    def bind(self, port: int, handler: Handler) -> None:
        """Start a service on ``port``.  One handler per port.

        This is the raw transport primitive.  Daemon code in
        ``src/repro`` goes through :class:`repro.core.service.Service`
        (lint-enforced); tests and attacker tooling may bind directly.
        """
        if port in self._services:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._services[port] = handler

    def rebind(self, port: int, handler: Handler) -> Optional[Handler]:
        """Replace whatever listens on ``port`` (service restart, e.g. the
        Figure 10/11 failover drills).  Returns the displaced handler, or
        None if the port was free."""
        previous = self._services.get(port)
        self._services[port] = handler
        return previous

    def unbind(self, port: int) -> bool:
        """Stop the service on ``port``; True if a handler was removed."""
        return self._services.pop(port, None) is not None

    def handler_for(self, port: int) -> Optional[Handler]:
        return self._services.get(port)

    def register_service(self, service) -> None:
        """Track an attached Service for lifecycle fan-out."""
        if service not in self.services:
            self.services.append(service)

    def unregister_service(self, service) -> None:
        if service in self.services:
            self.services.remove(service)

    def rpc(self, dst, port: int, payload: bytes) -> bytes:
        """Send a request from this host and wait for the reply."""
        return self.network.rpc(self, dst, port, payload)

    def rpc_async(self, dst, port: int, payload: bytes) -> PendingRpc:
        """Post a request without waiting; resolve via the runtime."""
        return self.network.rpc_async(self, dst, port, payload)

    def send(self, dst, port: int, payload: bytes) -> None:
        """Fire-and-forget datagram (no reply expected)."""
        self.network.send(self, dst, port, payload)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Host({self.name!r}, {self.address}, {state})"


class NetworkStats:
    """Counter-style view over the registry's ``net.*`` series.

    Preserves the original mapping API (``stats["messages"]``,
    ``stats["bytes"]``, ``stats["port:750"]``) while the registry stays
    the single source of truth.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    def __getitem__(self, key: str) -> int:
        if key == "messages":
            return int(self._metrics.total("net.datagrams_total"))
        if key == "bytes":
            return int(self._metrics.total("net.bytes_total"))
        if key.startswith("port:"):
            return int(
                self._metrics.total("net.datagrams_total", port=key[5:])
            )
        return 0

    get = __getitem__

    def clear(self) -> None:
        self._metrics.reset(prefix="net.")


class Network:
    """The wire connecting every host, plus its attackers and its stats."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.latency = float(latency)
        self._rng = random.Random(seed)
        self._hosts_by_name: Dict[str, Host] = {}
        self._hosts_by_addr: Dict[IPAddress, Host] = {}
        self._taps: List[Tap] = []
        self._interceptors: List[Interceptor] = []
        self._next_octet = 1
        #: The realm-wide observability planes: every instrumented layer
        #: (KDC, caches, propagation, NFS ...) records here.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.clock)
        self.tracer.metrics = self.metrics
        #: The append-only security-event log (auth failures, replays,
        #: tampered propagation ...); see :mod:`repro.obs.audit`.
        self.audit = AuditLog(self.clock, metrics=self.metrics)
        self.stats = NetworkStats(self.metrics)
        #: The discrete-event runtime every datagram leg is scheduled on.
        self.runtime = EventScheduler(self.clock, seed=seed)
        self.runtime.metrics = self.metrics
        #: How long synchronous RPC callers pump for a reply (sim secs).
        self.rpc_timeout = RPC_TIMEOUT
        #: The fault-injection plane (loss, duplication, reordering,
        #: jitter, partitions), sharing the network's seeded RNG so
        #: chaos runs are reproducible.
        self.faults = FaultPlane(self._rng, self.metrics)

    # -- topology -----------------------------------------------------------

    def add_host(
        self,
        name: str,
        address: Optional[str] = None,
        clock_skew: float = 0.0,
    ) -> Host:
        """Register a machine.  Addresses default to 18.72.0.x (MITnet)."""
        if name in self._hosts_by_name:
            raise ValueError(f"host name {name!r} already in use")
        if address is None:
            # Skip over any addresses claimed explicitly.
            while True:
                addr = IPAddress(
                    f"18.72.{self._next_octet // 256}.{self._next_octet % 256}"
                )
                self._next_octet += 1
                if addr not in self._hosts_by_addr:
                    break
        else:
            addr = IPAddress(address)
            if addr in self._hosts_by_addr:
                raise ValueError(f"address {addr} already in use")
        host = Host(self, name, addr, HostClock(self.clock, clock_skew))
        self._hosts_by_name[name] = host
        self._hosts_by_addr[addr] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise KeyError(f"no host named {name!r}") from None

    def host_by_address(self, address) -> Host:
        addr = IPAddress(address)
        try:
            return self._hosts_by_addr[addr]
        except KeyError:
            raise KeyError(f"no host at {addr}") from None

    def hosts(self) -> List[Host]:
        return list(self._hosts_by_name.values())

    def set_down(self, name: str) -> None:
        """Take a machine off the network (paper: 'the master machine is
        down').  Attached services get their ``on_crash`` hook — volatile
        state (inbound queues) is lost exactly as in a real crash."""
        host = self.host(name)
        if not host.up:
            return
        host.up = False
        for service in list(host.services):
            service.on_crash()

    def set_up(self, name: str) -> None:
        host = self.host(name)
        if host.up:
            return
        host.up = True
        for service in list(host.services):
            service.on_restart()

    # -- fault-plane conveniences ---------------------------------------------

    def _resolve_addr(self, host_or_address) -> IPAddress:
        """A host name, Host, or address → its IPAddress."""
        if isinstance(host_or_address, Host):
            return host_or_address.address
        if isinstance(host_or_address, str) and host_or_address in self._hosts_by_name:
            return self._hosts_by_name[host_or_address].address
        return IPAddress(host_or_address)

    def partition(self, group_a, group_b=None) -> Partition:
        """Cut ``group_a`` (host names or addresses) off from ``group_b``
        — or, with ``group_b=None``, from every other host.  Returns the
        installed rule; pass it to :meth:`heal` (or call ``heal()`` with
        no argument to lift every partition)."""
        a = [self._resolve_addr(h) for h in group_a]
        b = (
            [self._resolve_addr(h) for h in group_b]
            if group_b is not None
            else None
        )
        return self.faults.add(Partition(a, b))

    def heal(self, rule: Optional[Partition] = None) -> None:
        """Lift one partition, or all of them."""
        if rule is not None:
            self.faults.remove(rule)
            return
        for installed in self.faults.rules("partition"):
            self.faults.remove(installed)

    def crash_host(self, name: str, downtime: Optional[float] = None) -> None:
        """Crash a machine (it drops off the network, losing in-flight
        requests).  With ``downtime`` given, a restart is scheduled on
        the simulated clock — the Figure 10/11 master-reboot drill."""
        self.set_down(name)
        self.metrics.counter("faults.injected_total", {"kind": "crash"}).inc()
        if downtime is not None:
            if downtime <= 0:
                raise ValueError(f"downtime must be positive, got {downtime}")
            self.clock.call_at(
                self.clock.now() + downtime, lambda: self.restart_host(name)
            )

    def restart_host(self, name: str) -> None:
        """Bring a crashed machine back (its bound services survive —
        daemons restart from init)."""
        self.set_up(name)
        self.metrics.counter("faults.injected_total", {"kind": "restart"}).inc()

    # -- attackers ------------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Attach a passive eavesdropper; it sees every datagram."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Attach an active attacker that may rewrite or drop datagrams."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    # -- the caller-facing exchanges -------------------------------------------

    def rpc(
        self,
        src: Host,
        dst,
        port: int,
        payload: bytes,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Synchronous request/response between two hosts.

        Posts the request as a scheduled event and pumps the runtime
        until the reply (or a failure) resolves — so a nested RPC made
        from inside a handler simply pumps the same queue deeper."""
        pending = self.rpc_async(src, dst, port, payload)
        self._pump(pending, timeout)
        if pending.error is not None:
            raise pending.error
        return pending.reply

    def rpc_async(self, src: Host, dst, port: int, payload: bytes) -> PendingRpc:
        """Post a request without waiting.  The returned
        :class:`PendingRpc` resolves as the runtime executes; drive it
        with ``net.runtime.run_until_idle()`` or any synchronous call
        that pumps."""
        if not src.up:
            raise Unreachable(f"source host {src.name} is down")
        datagram = Datagram(
            src=src.address,
            src_port=EPHEMERAL_PORT,
            dst=IPAddress(dst),
            dst_port=port,
            payload=bytes(payload),
            trace=self.tracer.propagation_context(),
        )
        return self._post(datagram, one_way=False)

    def send(self, src: Host, dst, port: int, payload: bytes) -> None:
        """One-way datagram; silently lost on failure, like UDP.  Pumps
        until the delivery attempt completes so sender-visible side
        effects (the handler ran) are settled on return."""
        if not src.up:
            raise Unreachable(f"source host {src.name} is down")
        datagram = Datagram(
            src=src.address,
            src_port=EPHEMERAL_PORT,
            dst=IPAddress(dst),
            dst_port=port,
            payload=bytes(payload),
            trace=self.tracer.propagation_context(),
        )
        pending = self._post(datagram, one_way=True)
        self._pump(pending, None)
        # UDP: delivery failure is the sender's silence, not an error.

    def inject(self, datagram: Datagram) -> Optional[bytes]:
        """Deliver a hand-crafted datagram — source address forgery.

        This is the primitive behind the NFS appendix's observation that
        "this information could be forged": an attacker does not need a
        registered host to put packets on the wire.  Returns the
        handler's reply bytes (None if the packet was dropped in
        transit); raises on host-down / no-service, which the attacker
        observes as ICMP-ish silence anyway.
        """
        pending = self._post(datagram, one_way=True)
        self._pump(pending, None)
        if pending.error is not None:
            raise pending.error
        return pending.reply

    # -- event-driven delivery internals ----------------------------------------

    def _post(self, datagram: Datagram, one_way: bool) -> PendingRpc:
        """Schedule the request leg; the wire's propagation delay is the
        network latency (jitter rules add more at arrival)."""
        pending = PendingRpc(one_way=one_way)
        transit = self._transit_span(datagram, "request")
        self.runtime.after(
            self.latency,
            lambda: self._arrive(datagram, pending, transit),
            label="net.request",
        )
        return pending

    def _transit_span(
        self, datagram: Datagram, leg: str
    ) -> Optional[Span]:
        """A non-stack span covering one wire leg — the "net transit"
        slice of a traced exchange.  Only traced datagrams get one."""
        if not self.tracer.enabled or datagram.trace is None:
            return None
        return self.tracer.open_span(
            "net.transit",
            context=datagram.trace,
            leg=leg,
            dst=str(datagram.dst),
            port=datagram.dst_port,
        )

    def _end_transit(
        self, transit: Optional[Span], dropped: Optional[str] = None
    ) -> None:
        if transit is None:
            return
        if dropped is not None:
            transit.attrs["dropped"] = dropped
        self.tracer.close_span(transit)

    def _pump(self, pending: PendingRpc, timeout: Optional[float]) -> None:
        """Run runtime events until ``pending`` resolves.  Gives up —
        without consuming unrelated far-future events — once nothing is
        scheduled inside the timeout window."""
        deadline = self.clock.now() + (
            timeout if timeout is not None else self.rpc_timeout
        )
        while not pending.done:
            next_at = self.runtime.next_time()
            if next_at is None or next_at > deadline:
                pending._fail(
                    Unreachable(
                        "request timed out: no reply within "
                        f"{deadline - self.clock.now():.3f}s simulated"
                    ),
                    self.clock.now(),
                )
                break
            self.runtime.step()

    def _lost(self, datagram: Datagram, pending: PendingRpc) -> None:
        """A request leg that will never reach its handler."""
        if pending.one_way:
            pending._resolve(None, self.clock.now())
        else:
            pending._fail(
                Unreachable(
                    f"no reply from {datagram.dst}:{datagram.dst_port} "
                    "(request timed out)"
                ),
                self.clock.now(),
            )

    def _arrive(
        self,
        datagram: Datagram,
        pending: PendingRpc,
        transit: Optional[Span] = None,
    ) -> None:
        """The request leg lands: faults, taps, interceptors, then the
        handler (possibly after jitter's extra delay)."""
        verdict = self.faults.inspect(datagram, to_service=True)
        if verdict.drop_reason is not None:
            self.metrics.counter(
                "net.drops_total", {"reason": verdict.drop_reason}
            ).inc()
            self._end_transit(transit, dropped=verdict.drop_reason)
            self._lost(datagram, pending)
            return
        for tap in self._taps:
            tap(datagram)
        for interceptor in self._interceptors:
            result = interceptor(datagram)
            if result is None:
                self.metrics.counter(
                    "net.drops_total", {"reason": "intercepted"}
                ).inc()
                self._end_transit(transit, dropped="intercepted")
                self._lost(datagram, pending)
                return
            datagram = result
        self._end_transit(transit)
        port = {"port": datagram.dst_port}
        self.metrics.counter("net.datagrams_total", port).inc()
        self.metrics.counter("net.bytes_total", port).inc(
            len(datagram.payload)
        )
        if verdict.extra_delay:
            self.runtime.after(
                verdict.extra_delay,
                lambda: self._dispatch(datagram, verdict, pending),
                label="net.jitter",
            )
        else:
            self._dispatch(datagram, verdict, pending)

    def _dispatch(
        self, datagram: Datagram, verdict: Verdict, pending: PendingRpc
    ) -> None:
        """Hand the datagram to its bound service and route the reply."""
        if verdict.hold:
            # Parked in a reorder rule; it will arrive late (after a
            # successor) or never — to the sender, silence either way.
            self._lost(datagram, pending)
            return
        try:
            reply = self._handle_at_destination(datagram)
        except NetworkError as exc:
            pending._fail(exc, self.clock.now())
            return
        if verdict.duplicate:
            # The wire delivered a second copy; the handler runs again
            # and its reply goes nowhere (the caller keeps the first).
            self.metrics.counter(
                "net.duplicates_total", {"port": datagram.dst_port}
            ).inc()
            self._handle_discarding(datagram)
        for held in verdict.release:
            # A reordered predecessor finally arrives — long after its
            # sender stopped listening, so its reply is discarded too.
            self.metrics.counter(
                "net.reordered_total", {"port": held.dst_port}
            ).inc()
            self._handle_discarding(held)
        if isinstance(reply, DeferredReply):
            reply._bind(lambda payload: self._queue_reply(datagram, payload, pending))
        else:
            self._queue_reply(datagram, reply, pending)

    def _handle_discarding(self, datagram: Datagram) -> None:
        """Run the handler for a duplicate/late copy; discard its reply."""
        try:
            reply = self._handle_at_destination(datagram)
        except NetworkError:
            return
        if isinstance(reply, DeferredReply):
            reply._bind(lambda payload: None)

    def _handle_at_destination(self, datagram: Datagram):
        """Hand a datagram that survived transit to its bound service."""
        host = self._hosts_by_addr.get(datagram.dst)
        if host is None:
            raise Unreachable(f"host {datagram.dst} is unreachable")
        if not host.up:
            raise HostDown(f"host {datagram.dst} ({host.name}) is down")
        handler = host.handler_for(datagram.dst_port)
        if handler is None:
            raise NoSuchService(
                f"{host.name} ({datagram.dst}) has no service on port "
                f"{datagram.dst_port}"
            )
        return handler(datagram)

    def _queue_reply(
        self,
        request: Datagram,
        payload: Optional[bytes],
        pending: PendingRpc,
    ) -> None:
        """Route a handler's answer: schedule the reply leg for RPCs,
        resolve directly for one-way exchanges."""
        if pending.one_way:
            pending._resolve(payload, self.clock.now())
            return
        if payload is None:
            pending._fail(
                Unreachable(
                    f"no reply from {request.dst}:{request.dst_port} "
                    "(request timed out)"
                ),
                self.clock.now(),
            )
            return
        reply = request.reply_with(payload)
        transit = self._transit_span(reply, "reply")
        self.runtime.after(
            self.latency,
            lambda: self._arrive_reply(reply, request, pending, transit),
            label="net.reply",
        )

    def _arrive_reply(
        self,
        reply: Datagram,
        request: Datagram,
        pending: PendingRpc,
        transit: Optional[Span] = None,
    ) -> None:
        """The reply leg lands back at the caller."""
        verdict = self.faults.inspect(reply, to_service=False)
        if verdict.drop_reason is not None:
            self.metrics.counter(
                "net.drops_total", {"reason": verdict.drop_reason}
            ).inc()
            self._end_transit(transit, dropped=verdict.drop_reason)
            pending._fail(
                Unreachable(
                    f"reply from {request.dst}:{request.dst_port} was lost"
                ),
                self.clock.now(),
            )
            return
        for tap in self._taps:
            tap(reply)
        for interceptor in self._interceptors:
            result = interceptor(reply)
            if result is None:
                self.metrics.counter(
                    "net.drops_total", {"reason": "intercepted"}
                ).inc()
                self._end_transit(transit, dropped="intercepted")
                pending._fail(
                    Unreachable(
                        f"reply from {request.dst}:{request.dst_port} was lost"
                    ),
                    self.clock.now(),
                )
                return
            reply = result
        self._end_transit(transit)
        port = {"port": reply.dst_port}
        self.metrics.counter("net.datagrams_total", port).inc()
        self.metrics.counter("net.bytes_total", port).inc(len(reply.payload))
        if verdict.extra_delay:
            self.runtime.after(
                verdict.extra_delay,
                lambda: pending._resolve(reply.payload, self.clock.now()),
                label="net.jitter",
            )
        else:
            pending._resolve(reply.payload, self.clock.now())

    def reset_stats(self) -> None:
        """Zero the ``net.*`` traffic series (other metric families keep
        counting; they were never part of the traffic stats)."""
        self.stats.clear()
