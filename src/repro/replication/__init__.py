"""Database propagation (paper Section 5.3, Figure 13).

*"The master database is dumped every hour.  The database is sent, in
its entirety, to the slave machines, which then update their own
databases.  A program on the master host, called kprop, sends the update
to a peer program, called kpropd, running on each of the slave machines.
First kprop sends a checksum of the new database it is about to send.
The checksum is encrypted in the Kerberos master database key ...  The
slave propagation server calculates a checksum of the data it has
received, and if it matches the checksum sent by the master, the new
information is used to update the slave's database."*
"""

from repro.replication.kprop import Kprop, PropagationResult
from repro.replication.kpropd import Kpropd
from repro.replication.messages import (
    DeltaBody,
    DeltaReply,
    DeltaStatus,
    DeltaTransfer,
    PropKind,
    PropReply,
    PropTransfer,
    decode_prop_message,
    encode_prop_message,
)

__all__ = [
    "DeltaBody",
    "DeltaReply",
    "DeltaStatus",
    "DeltaTransfer",
    "Kprop",
    "Kpropd",
    "PropagationResult",
    "PropKind",
    "PropReply",
    "PropTransfer",
    "decode_prop_message",
    "encode_prop_message",
]
