"""Wire format of database propagation (paper Figure 13, plus deltas).

Two transfer kinds ride the kprop port behind a one-byte envelope:

* **full** (:class:`PropTransfer`) — the paper's Figure 13 transfer: a
  master-key checksum followed by the entire dump;
* **delta** (:class:`DeltaTransfer`) — the incremental extension: the
  journal entries between the slave's position and the master's, under
  the same master-key checksum discipline ("it is essential that only
  information from the master host be accepted by the slaves, and that
  tampering of data be detected" — the requirement is unchanged, only
  the payload shrank).
"""

from __future__ import annotations

import enum
from typing import Tuple, Union

from repro.database.journal import JournalEntry
from repro.encode import DecodeError, Decoder, Encoder, WireStruct, field


class PropKind(enum.IntEnum):
    """The envelope byte in front of every kprop transfer."""

    FULL = 1
    DELTA = 2


class PropTransfer(WireStruct):
    """kprop -> kpropd: the MAC comes first ("First kprop sends a
    checksum of the new database it is about to send"), then the dump.

    The dump itself needs no further encryption: "All passwords in the
    Kerberos database are encrypted in the master database key.
    Therefore, the information passed from master to slave over the
    network is not useful to an eavesdropper."  The keyed checksum is
    what guarantees "that only information from the master host be
    accepted by the slaves, and that tampering of data be detected".
    """

    FIELDS = (
        field("checksum", "bytes"),
        field("dump", "bytes"),
    )


class PropReply(WireStruct):
    """kpropd -> kprop: outcome of a full-dump update.

    ``applied_time`` is the slave's clock when it applied the update (0
    on rejection) — the master's ``repl.slave_lag_seconds`` gauge is
    computed from the slave's own report, so master and slave agree on
    one staleness definition.
    """

    FIELDS = (
        field("ok", "bool"),
        field("records", "u32"),
        field("applied_time", "f64"),
        field("text", "string"),
    )


class DeltaBody(WireStruct):
    """The checksummed payload of a delta transfer.

    ``from_seq`` is the position the slave must currently hold (its
    applied high-water mark); ``entries`` carry the journal records
    ``(from_seq, to_seq]`` in order.  An empty entry list is a valid
    heartbeat: it confirms the slave is current as of the master's clock.
    """

    FIELDS = (
        field("epoch", "u64"),
        field("from_seq", "u64"),
        field("to_seq", "u64"),
        field("time", "f64"),
        field("entries", ("list", JournalEntry)),
    )


class DeltaTransfer(WireStruct):
    """kprop -> kpropd: master-key MAC over the encoded body, then the
    body — the same shape as the Figure 13 full transfer."""

    FIELDS = (
        field("checksum", "bytes"),
        field("body", "bytes"),
    )


class DeltaStatus(enum.IntEnum):
    OK = 0
    #: The slave cannot apply this delta (gap, epoch mismatch, crash
    #: restart, never initialized) and asks for a full dump instead.
    NEED_FULL = 1
    #: The transfer failed verification (tampering / imposter master).
    REJECTED = 2


class DeltaReply(WireStruct):
    """kpropd -> kprop: outcome of a delta update."""

    FIELDS = (
        field("status", "u8"),
        field("applied_seq", "u64"),
        field("applied_time", "f64"),
        field("text", "string"),
    )


def encode_prop_message(
    kind: PropKind, message: Union[PropTransfer, DeltaTransfer]
) -> bytes:
    """Wrap a transfer in the one-byte kind envelope."""
    expected = PropTransfer if kind == PropKind.FULL else DeltaTransfer
    if type(message) is not expected:
        raise TypeError(
            f"{PropKind(kind).name} carries {expected.__name__}, "
            f"got {type(message).__name__}"
        )
    enc = Encoder()
    enc.u8(int(kind))
    message.encode_into(enc)
    return enc.getvalue()


def decode_prop_message(
    data: bytes,
) -> Tuple[PropKind, Union[PropTransfer, DeltaTransfer]]:
    """Parse an enveloped transfer; raises :class:`DecodeError` on any
    malformed input (never ``struct.error``/``IndexError``)."""
    try:
        dec = Decoder(data)
        kind = PropKind(dec.u8())
        cls = PropTransfer if kind == PropKind.FULL else DeltaTransfer
        message = cls.decode_from(dec)
        dec.expect_eof()
        return kind, message
    except DecodeError:
        raise
    except ValueError as exc:
        raise DecodeError(f"undecodable propagation transfer: {exc}") from exc
