"""Wire format of a database propagation transfer (paper Figure 13)."""

from __future__ import annotations

from repro.encode import WireStruct, field


class PropTransfer(WireStruct):
    """kprop -> kpropd: the MAC comes first ("First kprop sends a
    checksum of the new database it is about to send"), then the dump.

    The dump itself needs no further encryption: "All passwords in the
    Kerberos database are encrypted in the master database key.
    Therefore, the information passed from master to slave over the
    network is not useful to an eavesdropper."  The keyed checksum is
    what guarantees "that only information from the master host be
    accepted by the slaves, and that tampering of data be detected".
    """

    FIELDS = (
        field("checksum", "bytes"),
        field("dump", "bytes"),
    )


class PropReply(WireStruct):
    """kpropd -> kprop: outcome of the update."""

    FIELDS = (
        field("ok", "bool"),
        field("records", "u32"),
        field("text", "string"),
    )
