"""kprop: the master-side propagation program (paper Figure 13).

The administrator "must arrange that the programs to propagate database
updates from master to slaves be kicked off periodically" (Section 6.3);
:meth:`Kprop.schedule_hourly` wires that to the simulated clock at the
paper's stated cadence ("The master database is dumped every hour").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.database.db import KerberosDatabase
from repro.netsim import Host, IPAddress, NetworkError
from repro.netsim.clock import HOUR
from repro.netsim.ports import KPROP_PORT
from repro.obs import LATENCY_BUCKETS
from repro.replication.messages import PropReply, PropTransfer


@dataclass
class PropagationResult:
    """Outcome of one full propagation round."""

    time: float
    attempted: int
    succeeded: int
    failures: Dict[str, str] = dc_field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return self.succeeded == self.attempted


class Kprop:
    """Dumps the master database and pushes it to every slave."""

    def __init__(
        self,
        database: KerberosDatabase,
        host: Host,
        slave_addresses,
        port: int = KPROP_PORT,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if database.readonly:
            raise ValueError("kprop runs on the master, against the master database")
        self.db = database
        self.host = host
        self.port = port
        self.slaves: List[IPAddress] = [IPAddress(a) for a in slave_addresses]
        self.history: List[PropagationResult] = []
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        #: One attempt per slave per round by default (the historical
        #: behaviour: a missed slave simply catches up next hour); a
        #: policy adds per-transfer retransmission on lossy links.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=1)
        )
        self._retry_rng = random.Random(f"kprop:{host.name}")

    def add_slave(self, address) -> None:
        self.slaves.append(IPAddress(address))

    def propagate(self) -> PropagationResult:
        """One round: dump, checksum under the master key, send to each
        slave, collect outcomes.  A dead slave does not block the others
        (it simply misses this round and catches up on the next)."""
        with self.tracer.span(
            "kprop.round", master=self.host.name, slaves=len(self.slaves)
        ) as span:
            result = self._propagate_inner()
        self.metrics.histogram(
            "kprop.round_seconds", LATENCY_BUCKETS,
            {"master": self.host.name},
        ).observe(span.duration)
        return result

    def _propagate_inner(self) -> PropagationResult:
        now = self.host.clock.now()
        dump = self.db.dump(now=now)
        transfer = PropTransfer(
            checksum=self.db.master_key.checksum(dump),
            dump=dump,
        ).to_bytes()
        labels = {"master": self.host.name}
        self.metrics.counter("kprop.rounds_total", labels).inc()

        result = PropagationResult(time=now, attempted=len(self.slaves), succeeded=0)
        for address in self.slaves:
            try:
                raw, _, _ = run_with_failover(
                    self.retry_policy,
                    self.host.clock,
                    [address],
                    lambda addr: self.host.rpc(addr, self.port, transfer),
                    rng=self._retry_rng,
                    metrics=self.metrics,
                    op="kprop",
                    retry_on=(NetworkError,),
                )
                reply = PropReply.from_bytes(raw)
            except RetryExhausted as exc:
                result.failures[str(address)] = f"unreachable: {exc.last_error}"
                self.metrics.counter(
                    "kprop.transfers_total",
                    {**labels, "result": "unreachable"},
                ).inc()
                continue
            self.metrics.counter("kprop.bytes_total", labels).inc(
                len(transfer)
            )
            if reply.ok:
                result.succeeded += 1
                self.metrics.counter(
                    "kprop.transfers_total", {**labels, "result": "ok"}
                ).inc()
            else:
                result.failures[str(address)] = reply.text
                self.metrics.counter(
                    "kprop.transfers_total", {**labels, "result": "rejected"}
                ).inc()
        self.history.append(result)
        return result

    def schedule_hourly(self, interval: float = HOUR) -> None:
        """Kick off propagation every ``interval`` seconds of simulated
        time (the paper's hourly dump)."""
        self.host.clock.reference.call_every(interval, self.propagate)
