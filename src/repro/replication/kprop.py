"""kprop: the master-side propagation program (paper Figure 13, plus deltas).

The administrator "must arrange that the programs to propagate database
updates from master to slaves be kicked off periodically" (Section 6.3).
Two cadences coexist:

* :meth:`Kprop.schedule_hourly` — the paper's hourly *full* dump
  ("The master database is dumped every hour"), kept as the safety net
  and the catch-up path;
* :meth:`Kprop.schedule_incremental` — a fast cadence (seconds) that
  ships only the journal entries each slave has not yet applied,
  shrinking the slave-staleness window from "up to an hour" to the
  incremental interval at a per-round cost proportional to churn, not
  database size.

The master keeps a per-slave high-water mark ``(epoch, seq)``;
:meth:`propagate` chooses full vs. delta per slave and falls back to a
full dump whenever the slave answers ``NEED_FULL`` (gap, epoch mismatch,
crash-restart) or the journal has compacted past the slave's position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.database.db import KerberosDatabase
from repro.netsim import Host, IPAddress, NetworkError
from repro.netsim.clock import HOUR
from repro.netsim.ports import KPROP_PORT
from repro.obs import LATENCY_BUCKETS
from repro.replication.messages import (
    DeltaBody,
    DeltaReply,
    DeltaStatus,
    DeltaTransfer,
    PropKind,
    PropReply,
    PropTransfer,
    encode_prop_message,
)


@dataclass
class PropagationResult:
    """Outcome of one full propagation round."""

    time: float
    attempted: int
    succeeded: int
    failures: Dict[str, str] = dc_field(default_factory=dict)
    #: Per-slave transfer mode this round: "full", "delta", or
    #: "delta+full" (a delta was refused and a full dump followed).
    modes: Dict[str, str] = dc_field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return self.succeeded == self.attempted

    @property
    def deltas(self) -> int:
        return sum(1 for m in self.modes.values() if m == "delta")

    @property
    def fulls(self) -> int:
        return sum(1 for m in self.modes.values() if m != "delta")


class Kprop:
    """Pushes the master database to every slave — in full (Figure 13)
    or as journal deltas, per slave."""

    def __init__(
        self,
        database: KerberosDatabase,
        host: Host,
        slave_addresses,
        port: int = KPROP_PORT,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if database.readonly:
            raise ValueError("kprop runs on the master, against the master database")
        self.db = database
        self.host = host
        self.port = port
        self.slaves: List[IPAddress] = [IPAddress(a) for a in slave_addresses]
        self.history: List[PropagationResult] = []
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        #: Per-slave applied position ``(epoch, seq)`` as last reported;
        #: absent until the first successful full dump.
        self.high_water: Dict[IPAddress, Tuple[int, int]] = {}
        #: Per-slave ``applied_time`` from the last successful transfer
        #: (the slave's own clock reading) — the basis of the
        #: ``repl.slave_lag_seconds`` gauge, so master and slave agree
        #: on one staleness definition.
        self.last_applied_time: Dict[IPAddress, float] = {}
        #: One attempt per slave per round by default (the historical
        #: behaviour: a missed slave simply catches up next hour); a
        #: policy adds per-transfer retransmission on lossy links.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=1)
        )
        self._retry_rng = random.Random(f"kprop:{host.name}")

    def add_slave(self, address) -> None:
        self.slaves.append(IPAddress(address))

    # -- rounds -----------------------------------------------------------

    def propagate(self, full: bool = False) -> PropagationResult:
        """One round: choose full vs. delta per slave, send, collect
        outcomes.  A dead slave does not block the others (it simply
        misses this round and catches up on the next).  ``full=True``
        forces the Figure 13 full dump to every slave (the hourly
        safety-net cadence)."""
        with self.tracer.span(
            "kprop.round",
            master=self.host.name,
            host=self.host.name,
            slaves=len(self.slaves),
        ) as span:
            result = self._propagate_inner(force_full=full)
        self.metrics.histogram(
            "kprop.round_seconds", LATENCY_BUCKETS,
            {"master": self.host.name},
        ).observe(span.duration)
        return result

    def _propagate_inner(self, force_full: bool) -> PropagationResult:
        now = self.host.clock.now()
        labels = {"master": self.host.name}
        self.metrics.counter("kprop.rounds_total", labels).inc()
        # The full transfer is built lazily, once per round, and shared
        # by every slave that needs it.
        full_wire: Optional[bytes] = None

        def full_transfer() -> bytes:
            nonlocal full_wire
            if full_wire is None:
                dump = self.db.dump(now=now)
                full_wire = encode_prop_message(
                    PropKind.FULL,
                    PropTransfer(
                        checksum=self.db.master_key.checksum(dump), dump=dump
                    ),
                )
            return full_wire

        result = PropagationResult(time=now, attempted=len(self.slaves), succeeded=0)
        for address in self.slaves:
            delta_wire = (
                None if force_full else self._delta_wire_for(address, now)
            )
            try:
                if delta_wire is not None:
                    ok = self._send_delta(address, delta_wire, result, labels)
                    if ok is None:  # NEED_FULL: fall back within the round
                        result.modes[str(address)] = "delta+full"
                        self._send_full(address, full_transfer(), result, labels)
                else:
                    result.modes[str(address)] = "full"
                    self._send_full(address, full_transfer(), result, labels)
            except RetryExhausted as exc:
                result.failures[str(address)] = f"unreachable: {exc.last_error}"
                self.metrics.counter(
                    "kprop.transfers_total",
                    {**labels, "result": "unreachable"},
                ).inc()
            self._update_lag_gauge(address, now)
        if self.db.journal is not None:
            self.metrics.gauge("repl.journal_depth", labels).set(
                self.db.journal.depth()
            )
        self.history.append(result)
        return result

    # -- per-slave transfers ----------------------------------------------

    def _delta_wire_for(self, address: IPAddress, now: float) -> Optional[bytes]:
        """The encoded delta for one slave, or None when only a full dump
        can serve it (no high-water mark, epoch moved on, or the journal
        compacted past its position)."""
        journal = self.db.journal
        if journal is None:
            return None
        mark = self.high_water.get(address)
        if mark is None or mark[0] != journal.epoch:
            return None
        entries = journal.entries_since(mark[1])
        if entries is None:
            return None
        body = DeltaBody(
            epoch=journal.epoch,
            from_seq=mark[1],
            to_seq=entries[-1].seq if entries else mark[1],
            time=now,
            entries=entries,
        ).to_bytes()
        return encode_prop_message(
            PropKind.DELTA,
            DeltaTransfer(checksum=self.db.master_key.checksum(body), body=body),
        )

    def _rpc(self, address: IPAddress, wire: bytes) -> bytes:
        raw, _, _ = run_with_failover(
            self.retry_policy,
            self.host.clock,
            [address],
            lambda addr: self.host.rpc(addr, self.port, wire),
            rng=self._retry_rng,
            metrics=self.metrics,
            op="kprop",
            retry_on=(NetworkError,),
        )
        return raw

    def _send_delta(
        self,
        address: IPAddress,
        wire: bytes,
        result: PropagationResult,
        labels: Dict[str, str],
    ) -> Optional[bool]:
        """Returns True on success, None when the slave wants a full
        dump, and records a failure otherwise."""
        reply = DeltaReply.from_bytes(self._rpc(address, wire))
        status = DeltaStatus(reply.status)
        if status == DeltaStatus.NEED_FULL:
            self.high_water.pop(address, None)
            self.metrics.counter(
                "repl.delta_fallbacks_total", labels
            ).inc()
            return None
        if status == DeltaStatus.REJECTED:
            result.modes[str(address)] = "delta"
            result.failures[str(address)] = reply.text
            self.metrics.counter(
                "kprop.transfers_total", {**labels, "result": "rejected"}
            ).inc()
            return False
        result.modes[str(address)] = "delta"
        result.succeeded += 1
        self.high_water[address] = (self.db.journal.epoch, reply.applied_seq)
        self.last_applied_time[address] = reply.applied_time
        self.metrics.counter("repl.delta_bytes_total", labels).inc(len(wire))
        self.metrics.counter("kprop.bytes_total", labels).inc(len(wire))
        self.metrics.counter(
            "kprop.transfers_total", {**labels, "result": "ok"}
        ).inc()
        return True

    def _send_full(
        self,
        address: IPAddress,
        wire: bytes,
        result: PropagationResult,
        labels: Dict[str, str],
    ) -> bool:
        reply = PropReply.from_bytes(self._rpc(address, wire))
        self.metrics.counter("kprop.bytes_total", labels).inc(len(wire))
        self.metrics.counter("repl.full_dumps_total", labels).inc()
        if not reply.ok:
            result.failures[str(address)] = reply.text
            self.metrics.counter(
                "kprop.transfers_total", {**labels, "result": "rejected"}
            ).inc()
            return False
        result.succeeded += 1
        journal = self.db.journal
        if journal is not None:
            self.high_water[address] = (journal.epoch, journal.last_seq)
        self.last_applied_time[address] = reply.applied_time
        self.metrics.counter(
            "kprop.transfers_total", {**labels, "result": "ok"}
        ).inc()
        return True

    def _update_lag_gauge(self, address: IPAddress, now: float) -> None:
        """``repl.slave_lag_seconds``: sim-clock time since this slave's
        last *applied* update, by the slave's own report — the same
        definition as :meth:`Kpropd.staleness`.  Unset until the slave
        has applied at least once."""
        applied = self.last_applied_time.get(address)
        if applied is not None:
            self.metrics.gauge(
                "repl.slave_lag_seconds",
                {"master": self.host.name, "slave": str(address)},
            ).set(now - applied)

    # -- cadences ---------------------------------------------------------

    def schedule_hourly(self, interval: float = HOUR) -> None:
        """Kick off a *full-dump* round every ``interval`` seconds of
        simulated time (the paper's hourly dump — kept as the safety
        net under incremental propagation)."""
        self.host.clock.reference.call_every(
            interval, lambda: self.propagate(full=True)
        )

    def schedule_incremental(self, interval: float = 30.0) -> None:
        """Kick off an incremental round every ``interval`` seconds:
        deltas for slaves that are current, full dumps for ones that
        are not.  Run alongside :meth:`schedule_hourly`."""
        self.host.clock.reference.call_every(interval, self.propagate)
