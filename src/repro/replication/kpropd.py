"""kpropd: the slave-side propagation daemon (paper Figure 13).

*"The slave propagation server calculates a checksum of the data it has
received, and if it matches the checksum sent by the master, the new
information is used to update the slave's database."*  A bad checksum —
tampering in transit, or an imposter master without the master key —
rejects the transfer and leaves the previous database in place.

Beyond the paper's full dump, this daemon applies *delta* transfers:
journal entries from the master's update journal, verified under the
same master-key checksum, applied strictly in order.  A delta whose
``(epoch, from_seq)`` does not match the slave's applied position — a
gap, a different journal history, or a crash-restart that lost the
position — is answered ``NEED_FULL``, and the master falls back to the
Figure 13 full dump.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.service import Service
from repro.database.db import DatabaseError, KerberosDatabase
from repro.encode import DecodeError
from repro.netsim.ports import KPROP_PORT
from repro.replication.messages import (
    DeltaBody,
    DeltaReply,
    DeltaStatus,
    DeltaTransfer,
    PropKind,
    PropReply,
    PropTransfer,
    decode_prop_message,
)


class Kpropd(Service):
    """Receives database transfers (full dumps and deltas) and applies
    verified ones."""

    def __init__(
        self,
        database: KerberosDatabase,
        port: int = KPROP_PORT,
    ) -> None:
        super().__init__()
        if not database.readonly:
            raise ValueError("kpropd feeds a read-only slave database copy")
        self.db = database
        self.port = port
        #: Sim-clock time of the last *applied* update (full or delta);
        #: None before the first.  This — not the last attempted
        #: transfer — is the one staleness definition, shared with the
        #: master's ``repl.slave_lag_seconds`` gauge via ``applied_time``
        #: in replies.
        self.last_update_time: Optional[float] = None
        self.rejection_log: List[str] = []
        # The applied journal position.  Volatile by design: it models
        # the historical kpropd's in-memory notion of where it is, so a
        # crash-restart forgets it and the next delta triggers a
        # full-dump catch-up (the safe answer after losing state).
        self.applied_epoch: Optional[int] = None
        self.applied_seq: int = 0

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        self.metrics = self.host.network.metrics
        self.tracer = self.host.network.tracer
        self.audit = self.host.network.audit
        self._labels = {"slave": self.host.name}
        for result in ("applied", "rejected", "need_full"):
            self.metrics.counter(
                "kpropd.updates_total", {**self._labels, "result": result}
            )

    def on_crash(self) -> None:
        """The machine went down: the in-memory applied position is lost.
        The database store itself is durable, but without the position a
        delta cannot be safely applied — the next one is answered
        NEED_FULL and the master sends a full dump."""
        self.applied_epoch = None
        self.applied_seq = 0

    @property
    def updates_applied(self) -> int:
        return int(self.metrics.total(
            "kpropd.updates_total", result="applied", **self._labels
        ))

    @property
    def updates_rejected(self) -> int:
        return int(self.metrics.total(
            "kpropd.updates_total", result="rejected", **self._labels
        ))

    # -- dispatch ---------------------------------------------------------

    def _handle(self, datagram) -> bytes:
        self.metrics.counter("kpropd.bytes_total", self._labels).inc(
            len(datagram.payload)
        )
        with self.tracer.span_under(
            datagram.trace, "kpropd.apply", host=self.host.name
        ):
            try:
                kind, transfer = decode_prop_message(datagram.payload)
            except DecodeError as exc:
                return self._reject(f"undecodable transfer: {exc}")
            if kind == PropKind.FULL:
                return self._handle_full(transfer, trace=datagram.trace)
            return self._handle_delta(transfer, trace=datagram.trace)

    # -- full dumps (Figure 13) -------------------------------------------

    def _handle_full(self, transfer: PropTransfer, trace=None) -> bytes:
        # The paper's core check: recompute the keyed checksum over the
        # received bytes and compare.  Only the holder of the master
        # database key can produce a matching one.
        if not self.db.master_key.verify_checksum(transfer.dump, transfer.checksum):
            self._audit_tamper("full dump checksum mismatch", trace)
            return self._reject(
                "checksum mismatch: transfer tampered with or not from the master"
            )

        try:
            records = self.db.load_dump(transfer.dump)
        except DatabaseError as exc:
            return self._reject(f"dump rejected: {exc}")

        now = self.host.clock.now()
        self._applied(now)
        self.applied_epoch = self.db.loaded_epoch
        self.applied_seq = self.db.loaded_seq
        return PropReply(
            ok=True,
            records=records,
            applied_time=now,
            text=f"loaded {records} records",
        ).to_bytes()

    def _audit_tamper(self, detail: str, trace) -> None:
        """A failed keyed checksum is the one rejection that implies an
        attacker (or corruption) rather than mere staleness."""
        self.audit.emit(
            "tampered_propagation",
            host=self.host.name,
            trace=trace,
            detail=detail,
        )

    def _reject(self, reason: str) -> bytes:
        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "rejected"}
        ).inc()
        self.rejection_log.append(reason)
        return PropReply(
            ok=False, records=0, applied_time=0.0, text=reason
        ).to_bytes()

    # -- deltas -----------------------------------------------------------

    def _handle_delta(self, transfer: DeltaTransfer, trace=None) -> bytes:
        # Same trust model as the full dump: the master-key MAC over the
        # body is the only thing that makes these bytes the master's.
        if not self.db.master_key.verify_checksum(transfer.body, transfer.checksum):
            self._audit_tamper("delta checksum mismatch", trace)
            return self._reject_delta(
                "checksum mismatch: delta tampered with or not from the master"
            )
        try:
            body = DeltaBody.from_bytes(transfer.body)
        except DecodeError as exc:
            return self._reject_delta(f"undecodable delta body: {exc}")

        if self.applied_epoch is None or self.applied_epoch != body.epoch:
            return self._need_full(
                f"epoch mismatch: slave has {self.applied_epoch}, "
                f"delta is for {body.epoch}"
            )
        if body.from_seq != self.applied_seq:
            return self._need_full(
                f"sequence gap: slave applied up to {self.applied_seq}, "
                f"delta starts after {body.from_seq}"
            )
        expected = body.from_seq
        for entry in body.entries:
            if entry.seq != expected + 1:
                return self._need_full(
                    f"non-contiguous entries: {entry.seq} after {expected}"
                )
            expected = entry.seq
        if expected != body.to_seq:
            return self._need_full(
                f"entry run ends at {expected}, body claims {body.to_seq}"
            )

        try:
            applied = self.db.apply_entries(body.entries)
        except DatabaseError as exc:
            return self._reject_delta(f"delta rejected: {exc}")

        now = self.host.clock.now()
        self.applied_seq = body.to_seq
        self._applied(now)
        self.metrics.counter(
            "kpropd.delta_entries_total", self._labels
        ).inc(applied)
        return DeltaReply(
            status=int(DeltaStatus.OK),
            applied_seq=self.applied_seq,
            applied_time=now,
            text=f"applied {applied} entries",
        ).to_bytes()

    def _applied(self, now: float) -> None:
        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "applied"}
        ).inc()
        self.last_update_time = now

    def _reject_delta(self, reason: str) -> bytes:
        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "rejected"}
        ).inc()
        self.rejection_log.append(reason)
        return DeltaReply(
            status=int(DeltaStatus.REJECTED),
            applied_seq=self.applied_seq,
            applied_time=0.0,
            text=reason,
        ).to_bytes()

    def _need_full(self, reason: str) -> bytes:
        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "need_full"}
        ).inc()
        return DeltaReply(
            status=int(DeltaStatus.NEED_FULL),
            applied_seq=self.applied_seq,
            applied_time=0.0,
            text=reason,
        ).to_bytes()

    # -- staleness --------------------------------------------------------

    def staleness(self, now: float) -> float:
        """Seconds of sim-clock time since the last *applied* update
        (inf if never updated) — the slave's maximum data age, the
        consistency window the paper accepts ("very simple methods
        suffice for dealing with inconsistency").  An applied empty
        delta counts: it confirms the slave was current at that time.
        Attempted-but-rejected transfers do not."""
        if self.last_update_time is None:
            return float("inf")
        return now - self.last_update_time
