"""kpropd: the slave-side propagation daemon (paper Figure 13).

*"The slave propagation server calculates a checksum of the data it has
received, and if it matches the checksum sent by the master, the new
information is used to update the slave's database."*  A bad checksum —
tampering in transit, or an imposter master without the master key —
rejects the transfer and leaves the previous database in place.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.service import Service
from repro.database.db import DatabaseError, KerberosDatabase
from repro.encode import DecodeError
from repro.netsim import Host
from repro.netsim.ports import KPROP_PORT
from repro.replication.messages import PropReply, PropTransfer


class Kpropd(Service):
    """Receives database dumps and applies verified ones."""

    def __init__(
        self,
        database: KerberosDatabase,
        host: Optional[Host] = None,
        port: int = KPROP_PORT,
    ) -> None:
        super().__init__()
        if not database.readonly:
            raise ValueError("kpropd feeds a read-only slave database copy")
        self.db = database
        self.port = port
        self.last_update_time: Optional[float] = None
        self.rejection_log: List[str] = []
        self._maybe_attach(host)

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        self.metrics = self.host.network.metrics
        self._labels = {"slave": self.host.name}
        for result in ("applied", "rejected"):
            self.metrics.counter(
                "kpropd.updates_total", {**self._labels, "result": result}
            )

    @property
    def updates_applied(self) -> int:
        return int(self.metrics.total(
            "kpropd.updates_total", result="applied", **self._labels
        ))

    @property
    def updates_rejected(self) -> int:
        return int(self.metrics.total(
            "kpropd.updates_total", result="rejected", **self._labels
        ))

    def _handle(self, datagram) -> bytes:
        self.metrics.counter("kpropd.bytes_total", self._labels).inc(
            len(datagram.payload)
        )
        try:
            transfer = PropTransfer.from_bytes(datagram.payload)
        except DecodeError as exc:
            return self._reject(f"undecodable transfer: {exc}")

        # The paper's core check: recompute the keyed checksum over the
        # received bytes and compare.  Only the holder of the master
        # database key can produce a matching one.
        if not self.db.master_key.verify_checksum(transfer.dump, transfer.checksum):
            return self._reject(
                "checksum mismatch: transfer tampered with or not from the master"
            )

        try:
            records = self.db.load_dump(transfer.dump)
        except DatabaseError as exc:
            return self._reject(f"dump rejected: {exc}")

        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "applied"}
        ).inc()
        self.last_update_time = self.host.clock.now()
        return PropReply(
            ok=True, records=records, text=f"loaded {records} records"
        ).to_bytes()

    def _reject(self, reason: str) -> bytes:
        self.metrics.counter(
            "kpropd.updates_total", {**self._labels, "result": "rejected"}
        ).inc()
        self.rejection_log.append(reason)
        return PropReply(ok=False, records=0, text=reason).to_bytes()

    def staleness(self, now: float) -> float:
        """Seconds since the last applied update (inf if never updated).
        With hourly propagation this is the slave's maximum data age —
        the consistency window the paper accepts ("very simple methods
        suffice for dealing with inconsistency")."""
        if self.last_update_time is None:
            return float("inf")
        return now - self.last_update_time
