"""Fleet-scale chaos scenario engine.

A *campaign* is a named, parameterized, fully deterministic drill: it
composes the fault plane (:mod:`repro.netsim.faults`), the event
runtime, the realm supervisor, and :class:`repro.workload.AthenaWorkload`
into one declarative run that ends in SLO verdicts and a per-station
outcome digest.  The library (:mod:`repro.scenarios.library`) ships the
drills the paper's deployment story implies — the morning login storm,
a slave outage at peak, the master assassination the supervisor must
survive, a rolling KDC upgrade, a clock-skew epidemic, and lossy-WAN
degradation.

Run them from code (:func:`repro.scenarios.run`) or from the command
line (``python -m repro.scenarios``).
"""

from repro.scenarios.engine import (
    Campaign,
    CampaignResult,
    SloCheck,
    SloSpec,
    StationRecord,
    campaign,
    get,
    names,
    run,
)
from repro.scenarios import library  # noqa: F401  (registers the campaigns)

__all__ = [
    "Campaign",
    "CampaignResult",
    "SloCheck",
    "SloSpec",
    "StationRecord",
    "campaign",
    "get",
    "names",
    "run",
]
