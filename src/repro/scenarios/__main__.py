"""``python -m repro.scenarios`` — run chaos campaigns from the shell.

Examples::

    python -m repro.scenarios --list
    python -m repro.scenarios master_assassination
    python -m repro.scenarios --seed 42 --json out.json
    python -m repro.scenarios lossy_wan_degradation -p loss_rate=0.3

Exit status is 0 when every SLO of every selected campaign passed,
1 otherwise — so a campaign sweep slots straight into CI.
"""

from __future__ import annotations

import argparse
import json
import sys

import repro.scenarios as scenarios


def _parse_override(text: str):
    """``key=value`` with the value coerced like JSON where possible."""
    key, sep, raw = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"override {text!r} is not of the form key=value"
        )
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw
    return key, value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run named chaos campaigns against a simulated realm.",
    )
    parser.add_argument(
        "campaigns", nargs="*", metavar="CAMPAIGN",
        help="campaign names (default: all registered campaigns)",
    )
    parser.add_argument("--list", action="store_true", help="list campaigns")
    parser.add_argument("--seed", type=int, default=1988, help="run seed")
    parser.add_argument(
        "--json", metavar="PATH",
        help="write all campaign summaries to PATH as JSON",
    )
    parser.add_argument(
        "-p", "--param", action="append", default=[], type=_parse_override,
        metavar="KEY=VALUE",
        help="override a campaign parameter (repeatable; applies to "
        "every selected campaign that has that parameter)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in scenarios.names():
            spec = scenarios.get(name)
            print(f"{name:24} {spec.description}")
            defaults = ", ".join(f"{k}={v}" for k, v in spec.defaults)
            print(f"{'':24} params: {defaults}")
        return 0

    selected = args.campaigns or scenarios.names()
    summaries = {}
    all_passed = True
    for name in selected:
        spec = scenarios.get(name)
        known = dict(spec.defaults)
        overrides = {k: v for k, v in args.param if k in known}
        result = spec.run(args.seed, **overrides)
        summaries[name] = result.summary()
        all_passed = all_passed and result.passed
        verdict = "PASS" if result.passed else "FAIL"
        print(
            f"[{verdict}] {name}  makespan={result.makespan:.1f}s  "
            f"p95={result.latency_p95:.3f}s  outcomes={result.outcomes}"
        )
        for check in result.checks:
            mark = "ok " if check.passed else "MISS"
            bound = "≥" if check.kind == "min" else "≤"
            print(
                f"    {mark} {check.name}: {check.observed:.3f} "
                f"{bound} {check.threshold}"
            )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {"seed": args.seed, "campaigns": summaries},
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
