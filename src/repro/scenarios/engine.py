"""The campaign engine: registry, SLO evaluation, outcome accounting.

A campaign body is a plain function ``fn(seed, params) -> CampaignResult``
registered with the :func:`campaign` decorator.  The engine owns the
cross-cutting mechanics — parameter merging, SLO verdicts, latency
percentiles, and the per-station outcome digest that makes two
same-seed runs comparable byte-for-byte.

Everything a result carries is derived from the simulated clock and the
seeded RNG, never from wall time, so ``run(name, seed)`` is a pure
function: same name, same seed, same parameters → identical
:meth:`CampaignResult.summary`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import KerberosError
from repro.core.retry import RetryExhausted


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.999999) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective: a named observation with a bound.

    ``kind`` is the comparison: ``"min"`` passes when the observation is
    at least the threshold (success rates, event counts), ``"max"`` when
    it is at most the threshold (latencies, recovery times, promotion
    budgets).
    """

    name: str
    kind: str            # "min" | "max"
    threshold: float
    description: str = ""

    def check(self, observed: float) -> "SloCheck":
        if self.kind == "min":
            passed = observed >= self.threshold
        elif self.kind == "max":
            passed = observed <= self.threshold
        else:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        return SloCheck(
            name=self.name,
            kind=self.kind,
            threshold=self.threshold,
            observed=observed,
            passed=passed,
            description=self.description,
        )


@dataclass
class SloCheck:
    """An SLO evaluated against one campaign run."""

    name: str
    kind: str
    threshold: float
    observed: float
    passed: bool
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "observed": round(self.observed, 6),
            "passed": self.passed,
        }


@dataclass
class StationRecord:
    """What one workstation experienced during the drill."""

    station: str
    user: str
    outcome: str         # "ok" or a typed failure label
    latency: float       # sim-seconds for this station's operation


@dataclass
class CampaignResult:
    """The declarative verdict of one campaign run."""

    name: str
    seed: int
    params: Dict[str, object]
    makespan: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    checks: List[SloCheck] = field(default_factory=list)
    digest: str = ""
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def summary(self) -> dict:
        """The artifact/CLI view; deterministic for a given (name, seed)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "makespan": round(self.makespan, 6),
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "latency_p50": round(self.latency_p50, 6),
            "latency_p95": round(self.latency_p95, 6),
            "latency_p99": round(self.latency_p99, 6),
            "checks": [c.as_dict() for c in self.checks],
            "passed": self.passed,
            "digest": self.digest,
            "notes": {k: self.notes[k] for k in sorted(self.notes)},
        }

    # -- accounting helpers (campaign bodies call these) --------------------

    def account(self, records: Sequence[StationRecord]) -> None:
        """Fold per-station records into outcome counts, percentiles
        (over successful operations), and the run digest."""
        counts: Dict[str, int] = {}
        for record in records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        self.outcomes = counts
        ok_latencies = [r.latency for r in records if r.outcome == "ok"]
        self.latency_p50 = percentile(ok_latencies, 0.50)
        self.latency_p95 = percentile(ok_latencies, 0.95)
        self.latency_p99 = percentile(ok_latencies, 0.99)
        fingerprint = hashlib.sha256()
        for record in records:
            fingerprint.update(
                f"{record.station}:{record.user}:{record.outcome}:"
                f"{record.latency!r};".encode()
            )
        self.digest = fingerprint.hexdigest()

    def evaluate(
        self, slos: Sequence[SloSpec], observations: Mapping[str, float]
    ) -> None:
        """Check every SLO against its named observation (missing → 0)."""
        self.checks = [
            slo.check(float(observations.get(slo.name, 0.0))) for slo in slos
        ]

    def success_rate(self) -> float:
        total = sum(self.outcomes.values())
        return self.outcomes.get("ok", 0) / total if total else 0.0


def classify_failure(exc: Exception) -> str:
    """A stable label for a failed station operation."""
    if isinstance(exc, RetryExhausted):
        return "unavailable"
    if isinstance(exc, KerberosError):
        return f"refused:{exc.code.name}"
    return f"error:{type(exc).__name__}"


def login_job(
    net,
    ws,
    username: str,
    password: str,
    records: List[StationRecord],
) -> Callable[[], None]:
    """A schedulable closed-loop login for one station: kdestroy + kinit,
    outcome and latency recorded, failures contained (a dead KDC must
    not unwind the event loop)."""

    def job() -> None:
        started = net.clock.now()
        try:
            ws.client.kdestroy()
            ws.client.kinit(username, password)
            outcome = "ok"
        except Exception as exc:
            outcome = classify_failure(exc)
        records.append(
            StationRecord(
                station=ws.host.name,
                user=username,
                outcome=outcome,
                latency=net.clock.now() - started,
            )
        )

    return job


# -- the registry -----------------------------------------------------------


@dataclass(frozen=True)
class Campaign:
    """A registered drill: metadata plus the body that runs it."""

    name: str
    description: str
    defaults: Tuple[Tuple[str, object], ...]
    slos: Tuple[SloSpec, ...]
    body: Callable[[int, Dict[str, object]], CampaignResult]

    def run(self, seed: int = 1988, **overrides: object) -> CampaignResult:
        params: Dict[str, object] = dict(self.defaults)
        unknown = set(overrides) - set(params)
        if unknown:
            raise KeyError(
                f"campaign {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; knows {sorted(params)}"
            )
        params.update(overrides)
        result = self.body(seed, params)
        result.name = self.name
        result.seed = seed
        result.params = params
        return result


_REGISTRY: Dict[str, Campaign] = {}


def campaign(
    name: str,
    description: str,
    defaults: Optional[Mapping[str, object]] = None,
    slos: Sequence[SloSpec] = (),
):
    """Decorator: register ``fn(seed, params) -> CampaignResult``."""

    def register(fn):
        if name in _REGISTRY:
            raise ValueError(f"campaign {name!r} already registered")
        _REGISTRY[name] = Campaign(
            name=name,
            description=description,
            defaults=tuple(sorted((defaults or {}).items())),
            slos=tuple(slos),
            body=fn,
        )
        return fn

    return register


def names() -> List[str]:
    return sorted(_REGISTRY)


def get(name: str) -> Campaign:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no campaign {name!r}; available: {', '.join(names())}"
        ) from None


def run(name: str, seed: int = 1988, **overrides: object) -> CampaignResult:
    """Run one named campaign at a seed; deterministic end to end."""
    return get(name).run(seed, **overrides)
