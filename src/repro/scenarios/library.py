"""The shipped campaign library: six fleet-scale drills.

Each campaign is the executable form of a question the paper's
deployment raises:

* ``morning_login_storm`` — does a realm with slaves absorb the 9 AM
  arrival wave (Section 9 scale, Figure 10 load spreading)?
* ``slave_outage_peak`` — when one slave dies mid-storm, do its clients
  fail over without missing their SLO?
* ``master_assassination`` — when the *master* dies, does the
  supervisor promote a slave, re-point discovery, and bound the
  administrative outage — with no operator in the loop?
* ``rolling_kdc_upgrade`` — can every KDC be bounced in sequence for an
  upgrade without triggering a spurious promotion or failing a login?
* ``clock_skew_epidemic`` — the paper's 5-minute skew assumption: when
  a fraction of the fleet drifts beyond it, exactly those machines are
  refused service, and only those.
* ``lossy_wan_degradation`` — a remote campus behind a lossy, jittery
  WAN link: retries keep logins succeeding, at a latency cost the SLO
  quantifies.

Later PRs added ``request_plane_saturation`` (the batch plane's
admission-control gate), ``shard_rebalance_under_load`` (a live
``move_range`` mid-storm: the double-serve window plus referral repair
must keep every login succeeding while a hash range changes shards),
and ``nfs_fleet_mount_storm`` (the appendix's Kerberized NFS at fleet
scale: a mount wave with a cross-user leak probe on every station).

All campaigns build their own :class:`~repro.netsim.network.Network`
from the run's seed, so results are a pure function of
``(campaign, seed, params)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.hesiod import HesiodServer
from repro.apps.kerberized import (
    AppSession,
    ChannelError,
    KerberizedChannel,
    KerberizedServer,
)
from repro.core.errors import KerberosError
from repro.core.retry import RetryPolicy
from repro.netsim import Jitter, Loss, Match, Network
from repro.netsim.ports import KERBEROS_PORT
from repro.realm import Realm, RealmSupervisor, ShardedRealm, SupervisorConfig
from repro.scenarios.engine import (
    CampaignResult,
    SloSpec,
    StationRecord,
    campaign,
    login_job,
)
from repro.workload import AthenaWorkload

REALM = "ATHENA.MIT.EDU"

#: Arrival ramp starts here, leaving the realm a quiet warm-up beat.
START = 5.0


def _build(seed: int, n_users: int, n_slaves: int) -> tuple:
    """Network + populated realm + workload, all derived from the seed."""
    net = Network(seed=seed, latency=0.01)  # campus LAN: 10 ms per hop
    realm = Realm(net, REALM, seed=seed.to_bytes(8, "big"), n_slaves=n_slaves)
    workload = AthenaWorkload(realm, n_users=n_users, n_services=2, seed=seed)
    return net, realm, workload


def _paced_logins(net, workload, stations, window: float, records) -> None:
    """Schedule one closed-loop login per station, paced across the
    arrival window — the morning's staggered keyboard unlocks."""
    count = len(stations)
    for i, ws in enumerate(stations):
        username, password = workload.random_user()
        net.runtime.at(
            START + (i / count) * window,
            login_job(net, ws, username, password, records),
            label="scenario.login",
        )


@campaign(
    "morning_login_storm",
    "9 AM arrival wave against master + 2 slaves",
    defaults={"n_stations": 48, "n_users": 48, "window": 60.0},
    slos=(
        SloSpec("success_rate", "min", 0.99, "logins that obtained a TGT"),
        SloSpec("latency_p95", "max", 5.0, "p95 login latency (sim s)"),
    ),
)
def morning_login_storm(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=2)
    stations = workload.workstations(int(params["n_stations"]))
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, float(params["window"]), records)
    net.runtime.run_until_idle()

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.evaluate(
        _slos("morning_login_storm"),
        {
            "success_rate": result.success_rate(),
            "latency_p95": result.latency_p95,
        },
    )
    return result


@campaign(
    "slave_outage_peak",
    "one slave KDC crashes mid-storm; its clients fail over",
    defaults={"n_stations": 48, "n_users": 48, "window": 60.0},
    slos=(
        SloSpec("success_rate", "min", 0.99, "logins despite the outage"),
        SloSpec("latency_p95", "max", 10.0, "p95 includes failover hops"),
    ),
)
def slave_outage_peak(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=2)
    stations = workload.workstations(int(params["n_stations"]))
    records: List[StationRecord] = []
    window = float(params["window"])
    _paced_logins(net, workload, stations, window, records)
    # The first slave dies a third of the way into the wave and stays
    # down past its end — every station that preferred it must hop.
    victim = realm.slaves[0].host.name
    net.runtime.at(
        START + window / 3,
        lambda: net.crash_host(victim, downtime=2 * window),
        label="scenario.crash",
    )
    net.runtime.run_until_idle()

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.evaluate(
        _slos("slave_outage_peak"),
        {
            "success_rate": result.success_rate(),
            "latency_p95": result.latency_p95,
        },
    )
    return result


@campaign(
    "master_assassination",
    "master KDC killed at peak; supervisor must promote, re-point, rejoin",
    defaults={
        "n_stations": 40,
        "n_users": 40,
        "window": 240.0,
        "kill_at": 60.0,
        "downtime": 150.0,
        "run_for": 420.0,
    },
    slos=(
        SloSpec("success_rate", "min", 0.97, "slaves carry logins (Fig 10)"),
        SloSpec("promotions", "min", 1.0, "supervisor promoted a slave"),
        SloSpec("promotions_max", "max", 1.0, "exactly one promotion"),
        SloSpec("time_to_recover", "max", 30.0, "suspicion → new master"),
        SloSpec("audit_joined", "min", 1.0, "master_promoted has a trace"),
        SloSpec("rejoined", "min", 1.0, "old master came back as a slave"),
        SloSpec("post_recovery_write", "min", 1.0, "admin write + login"),
    ),
)
def master_assassination(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=2)
    realm.schedule_incremental(interval=30.0)

    # Discovery: the realm's KDC list lives in Hesiod, and every
    # workstation also gets a direct re-point on promotion.
    hesiod = HesiodServer().attach(net.add_host("hesiod"))
    realm.attach_hesiod(hesiod)

    supervisor = RealmSupervisor(realm, SupervisorConfig()).attach(
        net.add_host("realm-monitor")
    )

    stations = workload.workstations(int(params["n_stations"]))
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, float(params["window"]), records)

    old_master = realm.master_host.name
    net.runtime.at(
        float(params["kill_at"]),
        lambda: net.crash_host(old_master, downtime=float(params["downtime"])),
        label="scenario.assassinate",
    )
    net.runtime.run_for(float(params["run_for"]))

    # Administration must work on the *new* master with no manual help:
    # register a fresh user, propagate, and log them in.
    post_recovery = 0.0
    try:
        realm.add_user("postmortem", "postmortem-pw")
        realm.propagate()
        late_ws = realm.workstation("ws-postmortem")
        late_ws.client.kinit("postmortem", "postmortem-pw")
        post_recovery = 1.0
    except Exception:
        post_recovery = 0.0

    promoted = [
        e for e in net.audit.events() if e.kind == "master_promoted"
    ]
    rejoined = [
        e for e in net.audit.events() if e.kind == "slave_rejoined"
    ]
    ttr = net.metrics.gauge(
        "realm.time_to_recover_seconds", {"realm": REALM}
    ).value

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.notes = {
        "old_master": old_master,
        "new_master": realm.master_host.name,
        "promotions": supervisor.promotions,
        "time_to_recover": ttr,
    }
    result.evaluate(
        _slos("master_assassination"),
        {
            "success_rate": result.success_rate(),
            "promotions": float(supervisor.promotions),
            "promotions_max": float(supervisor.promotions),
            "time_to_recover": ttr,
            "audit_joined": float(
                sum(1 for e in promoted if e.trace_id)
            ),
            "rejoined": float(len(rejoined)),
            "post_recovery_write": post_recovery,
        },
    )
    return result


@campaign(
    "rolling_kdc_upgrade",
    "bounce every KDC in sequence; no login fails, no spurious promotion",
    defaults={
        "n_stations": 36,
        "n_users": 36,
        "window": 150.0,
        "bounce_downtime": 8.0,
        "run_for": 240.0,
    },
    slos=(
        SloSpec("success_rate", "min", 0.99, "logins ride out each bounce"),
        SloSpec("promotions_max", "max", 0.0, "no promotion during upgrade"),
    ),
)
def rolling_kdc_upgrade(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=2)
    # The supervisor watches the whole time: a short bounce (below its
    # miss threshold) must never look like an assassination.
    supervisor = RealmSupervisor(realm, SupervisorConfig()).attach(
        net.add_host("realm-monitor")
    )
    stations = workload.workstations(int(params["n_stations"]))
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, float(params["window"]), records)

    downtime = float(params["bounce_downtime"])
    fleet = [s.host.name for s in realm.slaves] + [realm.master_host.name]
    for i, name in enumerate(fleet):
        net.runtime.at(
            START + 25.0 + i * 40.0,
            lambda name=name: net.crash_host(name, downtime=downtime),
            label="scenario.bounce",
        )
    net.runtime.run_for(float(params["run_for"]))

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.notes = {"promotions": supervisor.promotions}
    result.evaluate(
        _slos("rolling_kdc_upgrade"),
        {
            "success_rate": result.success_rate(),
            "promotions_max": float(supervisor.promotions),
        },
    )
    return result


class _EchoServer(KerberizedServer):
    """Minimal Kerberized app target for the skew drill."""

    def handle(self, session: AppSession, data: bytes) -> bytes:
        return data


@campaign(
    "clock_skew_epidemic",
    "a fraction of the fleet drifts past the 5-minute skew window",
    defaults={"n_stations": 40, "n_users": 40, "skew": 600.0,
              "skew_fraction": 0.3},
    slos=(
        SloSpec("healthy_success_rate", "min", 0.99,
                "in-sync stations keep working"),
        SloSpec("skewed_refusal_rate", "min", 0.99,
                "drifted stations are refused, as the paper requires"),
    ),
)
def clock_skew_epidemic(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=1)
    app_host = net.add_host("appserver")
    service, _key = realm.add_service("echo", "appserver")
    _EchoServer(service, realm.srvtab_for(service), port=2100).attach(app_host)

    n_stations = int(params["n_stations"])
    n_skewed = int(n_stations * float(params["skew_fraction"]))
    records: List[StationRecord] = []
    stations = []
    for i in range(n_stations):
        drift = float(params["skew"]) if i < n_skewed else 0.0
        stations.append((realm.workstation(clock_skew=drift), drift > 0.0))

    def use_app(ws, username, password, drifted):
        def job():
            started = net.clock.now()
            try:
                ws.client.kinit(username, password)
                channel = KerberizedChannel(
                    ws.client, service, app_host.address, 2100
                )
                channel.call(b"ping")
                channel.close()
                outcome = "ok"
            except (ChannelError, KerberosError) as exc:
                # A drifted station is refused either at the TGS (its
                # authenticator timestamp is outside the window) or at
                # the application's krb_rd_req — same verdict.
                outcome = "refused:skew" if drifted else f"refused:{exc}"
            except Exception as exc:
                outcome = f"error:{type(exc).__name__}"
            records.append(
                StationRecord(
                    station=ws.host.name,
                    user=username,
                    outcome=outcome,
                    latency=net.clock.now() - started,
                )
            )

        return job

    for i, (ws, drifted) in enumerate(stations):
        username, password = workload.random_user()
        net.runtime.at(
            START + i * 1.5, use_app(ws, username, password, drifted),
            label="scenario.app_use",
        )
    net.runtime.run_until_idle()

    # Nested RPC pumping means records do not append in schedule order;
    # partition by station name, which is unambiguous per record.
    skewed_names = {ws.host.name for ws, drifted in stations if drifted}
    healthy = [r for r in records if r.station not in skewed_names]
    skewed_outcomes = [
        r.outcome for r in records if r.station in skewed_names
    ]
    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.notes = {"n_skewed": n_skewed}
    result.evaluate(
        _slos("clock_skew_epidemic"),
        {
            "healthy_success_rate": (
                sum(1 for r in healthy if r.outcome == "ok") / len(healthy)
                if healthy else 0.0
            ),
            "skewed_refusal_rate": (
                sum(1 for o in skewed_outcomes if o == "refused:skew")
                / len(skewed_outcomes)
                if skewed_outcomes else 0.0
            ),
        },
    )
    return result


@campaign(
    "lossy_wan_degradation",
    "remote campus behind a lossy, jittery WAN; retries carry the day",
    defaults={"n_stations": 40, "n_users": 40, "window": 120.0,
              "loss_rate": 0.15, "jitter_high": 2.0},
    slos=(
        SloSpec("success_rate", "min", 0.95, "retries absorb the loss"),
        SloSpec("latency_p95", "max", 120.0, "degraded, but bounded"),
    ),
)
def lossy_wan_degradation(seed: int, params: Dict) -> CampaignResult:
    net, realm, workload = _build(seed, int(params["n_users"]), n_slaves=1)
    # Both legs of every KDC exchange cross the bad link.
    loss = float(params["loss_rate"])
    jitter_high = float(params["jitter_high"])
    net.faults.add(Loss(loss, Match.build(port=KERBEROS_PORT)))
    net.faults.add(Loss(loss, Match.build(src_port=KERBEROS_PORT)))
    net.faults.add(Jitter(0.1, jitter_high, Match.build(port=KERBEROS_PORT)))
    net.faults.add(
        Jitter(0.1, jitter_high, Match.build(src_port=KERBEROS_PORT))
    )

    policy = RetryPolicy(
        max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=8.0
    )
    stations = [
        realm.workstation(retry_policy=policy)
        for _ in range(int(params["n_stations"]))
    ]
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, float(params["window"]), records)
    net.runtime.run_until_idle()

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.evaluate(
        _slos("lossy_wan_degradation"),
        {
            "success_rate": result.success_rate(),
            "latency_p95": result.latency_p95,
        },
    )
    return result


def _slos(name: str):
    from repro.scenarios.engine import get

    return get(name).slos


@campaign(
    "request_plane_saturation",
    "open-loop AS storm at 2x KDC capacity; sheds typed, admitted fast",
    defaults={"n_stations": 64, "n_users": 32, "overload_factor": 2.0,
              "queue_limit": 16},
    slos=(
        SloSpec("shed_total", "min", 1.0, "admission control engaged"),
        SloSpec("clean_failure_rate", "min", 1.0,
                "every failure is a typed shed/refusal, never a crash"),
        SloSpec("success_rate", "min", 0.5,
                "retries recover at least the admitted half"),
        SloSpec("latency_p95", "max", 30.0,
                "admitted logins don't collapse under the storm"),
    ),
)
def request_plane_saturation(seed: int, params: Dict) -> CampaignResult:
    """ISSUE 8's gate drill: drive the batch request plane *past* its
    admission capacity, open-loop — arrivals are scheduled by the clock,
    never by completions, so the storm does not politely slow down when
    the KDC does.  The realm must degrade the way the WorkQueue design
    (PR 4) promises: excess arrivals are shed at submit time with a
    typed ``KDC_OVERLOADED`` error (clients retry and mostly recover),
    and the requests that *are* admitted keep their latency — overload
    must never smear into the served population.
    """
    from repro.runtime.workqueue import WorkQueueConfig

    queue = WorkQueueConfig(
        workers=1, batch_size=8,
        queue_limit=int(params["queue_limit"]),
    )
    # Service capacity of the loop, from its own cost model; the window
    # is chosen so the arrival rate is `overload_factor` times that.
    capacity = queue.batch_size / queue.batch_cost(queue.batch_size)
    n_stations = int(params["n_stations"])
    window = n_stations / (capacity * float(params["overload_factor"]))

    net = Network(seed=seed, latency=0.01)
    realm = Realm(
        net, REALM, seed=seed.to_bytes(8, "big"), n_slaves=0,
        kdc_queue=queue,
    )
    workload = AthenaWorkload(
        realm, n_users=int(params["n_users"]), n_services=2, seed=seed
    )
    stations = workload.workstations(n_stations)
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, window, records)
    net.runtime.run_until_idle()

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    sheds = net.metrics.total("kdc.queue.shed_total")
    failures = [r for r in records if r.outcome != "ok"]
    clean = [
        r for r in failures
        if r.outcome == "unavailable" or r.outcome.startswith("refused:")
    ]
    result.notes["shed_total"] = int(sheds)
    result.notes["failures"] = len(failures)
    result.notes["arrival_rate_req_s"] = round(n_stations / window, 1)
    result.notes["capacity_req_s"] = round(capacity, 1)
    result.evaluate(
        _slos("request_plane_saturation"),
        {
            "shed_total": sheds,
            "clean_failure_rate": (
                len(clean) / len(failures) if failures else 1.0
            ),
            "success_rate": result.success_rate(),
            "latency_p95": result.latency_p95,
        },
    )
    return result


@campaign(
    "nfs_fleet_mount_storm",
    "paced mount wave across an NFS fleet; no leaks, no residue",
    defaults={"n_servers": 4, "n_stations": 32, "n_users": 16,
              "window": 60.0},
    slos=(
        SloSpec("success_rate", "min", 0.99,
                "mount + I/O + unmount completed"),
        SloSpec("mount_latency_p99", "max", 5.0,
                "p99 of the Kerberos mount handshake (sim s)"),
        SloSpec("credential_leaks", "max", 0.0,
                "cross-user reads served — must be zero, ever"),
        SloSpec("residual_mappings", "max", 0.0,
                "kernel-map entries left after every unmount"),
    ),
)
def nfs_fleet_mount_storm(seed: int, params: Dict) -> CampaignResult:
    """The fleet PR's acceptance drill: a wave of workstations mounts a
    Kerberized NFS fleet, reads and writes its own 0600 home files,
    *attempts a cross-user read* (the leak probe — it must be refused),
    and unmounts.  The SLOs are the appendix's security contract at
    fleet scale: mount latency stays bounded, not one byte crosses user
    boundaries, and unmount leaves no mapping behind."""
    from repro.realm import NfsFleet, NfsUserSpec

    net = Network(seed=seed, latency=0.01)
    realm = Realm(net, REALM, seed=seed.to_bytes(8, "big"), n_slaves=1)
    n_users = int(params["n_users"])
    users = []
    for i in range(n_users):
        name, pw, uid = f"user{i:03d}", f"pw-{i:03d}", 1000 + i
        realm.add_user(name, pw)
        users.append((name, pw, uid))
    fleet = NfsFleet(
        realm,
        n_servers=int(params["n_servers"]),
        users=[NfsUserSpec(name, uid) for name, _pw, uid in users],
    )
    # Seed each user's private file on every server.
    from repro.apps.nfs import NfsCredential

    for site in fleet.servers:
        for name, _pw, uid in users:
            cred = NfsCredential(uid=uid, gids=(100,))
            site.server.fs.create(f"/u/{name}/secret.txt", cred, mode=0o600)
            site.server.fs.write(
                f"/u/{name}/secret.txt", f"secret-{name}".encode(), cred
            )

    records: List[StationRecord] = []
    leaks: List[str] = []

    def station_job(ws, site_index, name, pw, uid, other_name):
        def job():
            from repro.apps.nfs import NfsClientError

            site = fleet[site_index]
            mount_latency = 0.0
            outcome = "ok"
            try:
                ws.client.kinit(name, pw)
                client = fleet.client(ws, site_index, uid_on_client=uid)
                t0 = net.clock.now()
                client.kerberos_mount(ws.client, site.mount_service)
                mount_latency = net.clock.now() - t0
                if client.read(f"/u/{name}/secret.txt") != (
                    f"secret-{name}".encode()
                ):
                    outcome = "wrong_bytes"
                # The leak probe: another user's 0600 file must be
                # refused at their 0700 home directory.
                try:
                    client.read(f"/u/{other_name}/secret.txt")
                    leaks.append(f"{name} read {other_name} on {site.name}")
                    outcome = "leak"
                except NfsClientError:
                    pass
                client.create(f"/u/{name}/note-{ws.host.name}.txt")
                client.write(
                    f"/u/{name}/note-{ws.host.name}.txt", b"present"
                )
                client.unmount()
            except Exception as exc:
                outcome = f"error:{type(exc).__name__}"
            records.append(
                StationRecord(
                    station=ws.host.name,
                    user=name,
                    outcome=outcome,
                    latency=mount_latency,
                )
            )

        return job

    n_stations = int(params["n_stations"])
    window = float(params["window"])
    for i in range(n_stations):
        name, pw, uid = users[i % n_users]
        other_name = users[(i + 1) % n_users][0]
        ws = realm.workstation()
        net.runtime.at(
            START + (i / n_stations) * window,
            station_job(ws, i % len(fleet), name, pw, uid, other_name),
            label="scenario.mount",
        )
    net.runtime.run_until_idle()

    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.notes = {
        "leaks": leaks,
        "residual_mappings": fleet.total_mappings(),
        "mounts_mapped": int(net.metrics.total(
            "nfs.mounts_total", result="mapped"
        )),
    }
    result.evaluate(
        _slos("nfs_fleet_mount_storm"),
        {
            "success_rate": result.success_rate(),
            "mount_latency_p99": result.latency_p99,
            "credential_leaks": float(len(leaks)),
            "residual_mappings": float(fleet.total_mappings()),
        },
    )
    return result


@campaign(
    "shard_rebalance_under_load",
    "live move_range mid-storm: zero auth failures, p99 stays bounded",
    defaults={"n_stations": 40, "n_users": 40, "n_shards": 2,
              "window": 90.0, "move_at": 30.0},
    slos=(
        SloSpec("success_rate", "min", 1.0,
                "no login fails while the range moves"),
        SloSpec("latency_p99", "max", 10.0,
                "p99 bounded through the handoff (referral = one hop)"),
        SloSpec("ring_epoch", "min", 2.0, "the ring actually flipped"),
        SloSpec("entries_moved", "min", 1.0, "records really streamed"),
    ),
)
def shard_rebalance_under_load(seed: int, params: Dict) -> CampaignResult:
    """The sharding acceptance drill: a paced login storm is in flight
    when the operator moves half of shard 0's largest arc to shard 1.
    The move double-serves the range while it streams, then flips the
    ring epoch; stations that cached the old ring are repaired lazily
    by ``WrongShard`` referrals.  The SLO is absolute: **zero** login
    failures — a rebalance that bounces even one user is a failed
    rebalance — and the p99 stays bounded (a referral costs one extra
    round trip, not a timeout).
    """
    net = Network(seed=seed, latency=0.01)
    realm = ShardedRealm(
        net, REALM, shards=int(params["n_shards"]),
        seed=seed.to_bytes(8, "big"),
    )
    workload = AthenaWorkload(
        realm, n_users=int(params["n_users"]), n_services=2, seed=seed
    )
    stations = workload.workstations(int(params["n_stations"]))
    # Warm every station's ring snapshot so the move strands real
    # cached views — the referral path gets genuine traffic.
    for ws in stations:
        ws.client.kdcs(REALM)
    records: List[StationRecord] = []
    _paced_logins(net, workload, stations, float(params["window"]), records)

    def rebalance():
        # Move the range holding (roughly) half of shard 0's users —
        # chosen from live principal positions, the way an operator
        # rebalancing a hot shard would, so records really stream.
        from repro.realm.sharding import hash_point

        points = sorted(
            hash_point(username)
            for username, _pw in workload.users
            if realm.shard_for_key(username) == 0
        )
        if not points:
            return
        lo = points[0]
        hi = points[len(points) // 2] + 1
        realm.move_range(lo, hi, 1)

    net.runtime.at(
        START + float(params["move_at"]), rebalance,
        label="scenario.rebalance",
    )
    net.runtime.run_until_idle()

    moved = net.metrics.counter(
        "shard.rebalance_entries_total", {"realm": REALM}
    ).value
    epoch = net.metrics.gauge("shard.ring_epoch", {"realm": REALM}).value
    referrals = net.metrics.counter(
        "kdc.referral_follows_total", {"realm": REALM}
    ).value
    result = CampaignResult("", seed, {}, makespan=net.clock.now() - START)
    result.account(records)
    result.notes = {
        "entries_moved": int(moved),
        "ring_epoch": int(epoch),
        "referral_follows": int(referrals),
    }
    result.evaluate(
        _slos("shard_rebalance_under_load"),
        {
            "success_rate": result.success_rate(),
            "latency_p99": result.latency_p99,
            "ring_epoch": epoch,
            "entries_moved": moved,
        },
    )
    return result
