"""The unified Service API: one lifecycle for every network daemon.

Before this module, each daemon (KDC, kdbm, kpropd, NFS/mountd, the
registration and application servers) invented its own binding pattern —
five ad-hoc variations of ``host.bind(port, handler)`` in a constructor,
with no way to detach, restart, or enumerate what a host runs.  The
event-driven runtime needs exactly those notions: a crashed host must
drop its services' volatile state (inbound queues), and a restarted one
must let them rebuild.

:class:`Service` is the one interface:

* :meth:`Service.ports` declares the port→handler map (a daemon may
  serve several ports — rlogind also answers the legacy rshd port);
* :meth:`attach` binds every declared port on a host and registers the
  service for lifecycle fan-out; :meth:`detach` unbinds and unregisters;
* lifecycle hooks — :meth:`on_attach`, :meth:`on_detach`,
  :meth:`on_crash`, :meth:`on_restart` — are driven by the network
  (``Network.set_down/set_up`` and the crash/restart fault helpers).

Construction is always detached: build the daemon, then
``attach(host)`` (the call chains, so
``KerberosServer(db, keygen=kg).attach(host)`` reads naturally).  The
constructor-``host`` auto-attach shim that eased the original migration
was kept exactly one release and is gone.

Direct ``Host.bind`` calls outside :mod:`repro.netsim` and this module
are banned by the AST lint suite (tests and attacker tooling excepted —
an adversary does not use polite interfaces).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class ServiceError(Exception):
    """Misuse of the service lifecycle (double attach, detach while
    detached, port collision at attach time)."""


class Service:
    """Base class for every network daemon in the realm.

    Subclasses implement :meth:`ports` and may override the lifecycle
    hooks.  The base class owns the attach/detach mechanics and the
    ``host`` attribute (None while detached).
    """

    def __init__(self) -> None:
        self.host = None

    # -- declaration --------------------------------------------------------

    def ports(self) -> Dict[int, Callable]:
        """The port→handler map this service binds.  Called at attach
        time, so handlers may be bound methods."""
        raise NotImplementedError

    @property
    def attached(self) -> bool:
        return self.host is not None

    # -- lifecycle ----------------------------------------------------------

    def attach(self, host) -> "Service":
        """Bind every declared port on ``host`` and register for
        lifecycle fan-out.  Returns self, so construction chains:
        ``KerberosServer(db, keygen=kg).attach(host)``."""
        if self.host is not None:
            raise ServiceError(
                f"{type(self).__name__} is already attached to "
                f"{self.host.name}"
            )
        port_map = self.ports()
        bound = []
        try:
            for port, handler in port_map.items():
                host.bind(port, handler)
                bound.append(port)
        except ValueError as exc:
            for port in bound:
                host.unbind(port)
            raise ServiceError(str(exc)) from exc
        self.host = host
        host.register_service(self)
        self.on_attach()
        return self

    def detach(self) -> None:
        """Unbind every declared port and deregister."""
        if self.host is None:
            raise ServiceError(f"{type(self).__name__} is not attached")
        self.on_detach()
        host, self.host = self.host, None
        for port in self.ports():
            host.unbind(port)
        host.unregister_service(self)

    # -- hooks (no-ops by default) -------------------------------------------

    def on_attach(self) -> None:
        """Runs after every port is bound; host is set."""

    def on_detach(self) -> None:
        """Runs before ports are unbound; host is still set."""

    def on_crash(self) -> None:
        """The host went down.  Volatile state (queues, in-flight work)
        is lost; durable state (the database on disk) survives."""

    def on_restart(self) -> None:
        """The host came back; rebuild volatile state."""


__all__ = ["Service", "ServiceError"]
