"""Bounded, deadline-aware retry with deterministic backoff.

The 1988 clients ran send-and-wait over UDP: a lost datagram meant a
retransmission, a dead master meant trying a slave (Figure 10).  This
module centralises that behaviour for every request/response client in
the reproduction — the Kerberos client's AS/TGS exchanges, the KDBM
admin client, kprop transfers, and the NFS/mountd clients — so each one
gets the same well-behaved shape:

* a bounded number of attempts, cycling through an endpoint list
  (master first, then slaves — read-only AS/TGS traffic may land on any
  KDC; admin writes pass a one-element list because the KDBM "must run
  on the machine housing the Kerberos database");
* exponential backoff between attempts, with *deterministic* jitter
  drawn from a caller-seeded RNG and slept on the **simulated** clock —
  chaos runs stay reproducible bit-for-bit;
* an optional deadline in simulated seconds: no retry is started whose
  backoff would overrun it.

Retransmission safety is the caller's job and the reason ``attempt``
callables are invoked fresh each time: a verbatim TGS or AP resend
would be swallowed by the server's replay cache, so anything carrying
an authenticator must rebuild it per attempt (Bilal & Kang's
time-assisted analysis and Dua et al.'s replay-prevention work both
hinge on this coupling of retries to timestamp freshness).

Metrics (when a registry is supplied): ``retry.attempts_total{op=...}``
counts every attempt including the first; ``retry.exhausted_total{op=...}``
counts runs that gave up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


class RetryExhausted(Exception):
    """Every allowed attempt failed (or the deadline ran out)."""

    def __init__(
        self,
        op: str,
        attempts: int,
        elapsed: float,
        last_error: Optional[BaseException],
    ) -> None:
        self.op = op
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error
        super().__init__(
            f"{op}: {attempts} attempt(s) over {elapsed:.3f}s simulated, "
            f"last error: {last_error}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, deadline, and backoff shape.

    ``base_delay=0`` (the default) retries immediately — the legacy
    tight-loop behaviour.  With a base delay, retry *n* backs off
    ``base_delay * multiplier**(n-1)`` capped at ``max_delay``, then
    scaled by a jitter factor uniform in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 3
    deadline: Optional[float] = None
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} below base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt`` (1 = after the first
        failure).  Deterministic for a given seeded ``rng``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.base_delay <= 0:
            return 0.0
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


def run_with_failover(
    policy: RetryPolicy,
    clock,
    endpoints: Sequence,
    attempt: Callable,
    *,
    rng=None,
    sleep: Optional[Callable[[float], None]] = None,
    metrics=None,
    op: str = "rpc",
    retry_on: Tuple[type, ...] = (Exception,),
):
    """Run ``attempt(endpoint)`` until one succeeds, cycling endpoints.

    ``clock`` is a host or sim clock (anything with ``now()``); backoff
    sleeps advance the underlying :class:`~repro.netsim.clock.SimClock`
    unless a ``sleep`` callable is supplied.  Exceptions in ``retry_on``
    are retried; anything else propagates immediately (a KDC *error
    reply* is an answer, not an outage).

    Returns ``(result, endpoint, attempts)``; raises
    :class:`RetryExhausted` when attempts or deadline run out.
    """
    if not endpoints:
        raise ValueError(f"{op}: no endpoints to try")
    if sleep is None:
        reference = getattr(clock, "reference", clock)
        sleep = reference.advance
    start = clock.now()
    last_error: Optional[BaseException] = None
    attempts = 0
    while attempts < policy.max_attempts:
        endpoint = endpoints[attempts % len(endpoints)]
        attempts += 1
        if metrics is not None:
            metrics.counter("retry.attempts_total", {"op": op}).inc()
        try:
            return attempt(endpoint), endpoint, attempts
        except retry_on as exc:
            last_error = exc
        if attempts >= policy.max_attempts:
            break
        delay = policy.backoff(attempts, rng)
        if (
            policy.deadline is not None
            and (clock.now() - start) + delay >= policy.deadline
        ):
            break
        if delay:
            sleep(delay)
    if metrics is not None:
        metrics.counter("retry.exhausted_total", {"op": op}).inc()
    raise RetryExhausted(
        op=op,
        attempts=attempts,
        elapsed=clock.now() - start,
        last_error=last_error,
    )


__all__ = ["RetryExhausted", "RetryPolicy", "run_with_failover"]
