"""The authentication server (paper Sections 2.2, 4.2, 4.4; Figures 5, 8, 10).

One :class:`KerberosServer` implements both halves of the KDC:

* the **authentication service** (Figure 5) — handles initial-ticket
  requests: "The authentication server checks that it knows about the
  client.  If so, it generates a random session key ... It then creates
  a ticket for the ticket-granting server ... This is all encrypted in a
  key known only to the ticket-granting server and the authentication
  server"; the reply "is encrypted in the client's private key";
* the **ticket-granting service** (Figure 8) — handles requests carrying
  a TGT and authenticator: "The ticket-granting server then checks the
  authenticator and ticket-granting ticket as described above.  If
  valid, the ticket-granting server generates a new random session key
  ... The lifetime of the new ticket is the minimum of the remaining
  life for the ticket-granting ticket and the default for the service";
  the reply "is encrypted in the session key that was part of the
  ticket-granting ticket".

The server "performs read-only operations on the Kerberos database", so
the same class runs unchanged against a slave's read-only replica
(Figure 10).  Cross-realm requests (Section 7.2) are recognized by the
request's cleartext TGT realm and unsealed with the previously exchanged
inter-realm key.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.crypto import (
    DesKey,
    KeyGenerator,
    keycache,
    seal_many,
    seal_resume_many,
)
from repro.crypto.modes import interleaved_blocks
from repro.core.applib import krb_rd_req
from repro.core.errors import ErrorCode, KerberosError, error_for_code
from repro.core.service import Service
from repro.core.messages import (
    AsRequest,
    ErrorReply,
    KdcReply,
    KdcReplyBody,
    MessageType,
    PreauthAsRequest,
    TgsRequest,
    decode_message,
    encode_message,
    verify_preauth,
)
from repro.core.replay import CLOCK_SKEW, ReplayCache
from repro.core.ticket import Ticket, seal_ticket_cached, ticket_seal_job
from repro.database.db import KerberosDatabase, NoSuchPrincipal
from repro.database.schema import PrincipalRecord
from repro.encode import BatchReader, BatchWriter
from repro.netsim import DeferredReply, IPAddress
from repro.netsim.ports import KERBEROS_PORT
from repro.obs import LIFETIME_BUCKETS
from repro.principal import Principal, tgs_principal
from repro.runtime import WorkQueue, WorkQueueConfig

#: db name under which the key for *accepting* TGTs issued by a remote
#: realm is stored.  The issuing side stores the same key under the
#: remote TGS principal (krbtgt.<remote>); see repro.core.crossrealm.
XREALM_NAME = "xrealm"

#: Buckets for the kdc.batch_size histogram (requests per worker batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _Prepared(NamedTuple):
    """Everything a successful exchange needs *before* any sealing — the
    output of the lookup-all stage, consumed by seal-all/encode-all."""

    kind: str                    # "as" | "tgs"
    mtype: MessageType           # AS_REP | TGS_REP
    client: Principal            # reply's cleartext client field
    principal: str               # audit identity
    ticket: Ticket
    service_key: DesKey          # seals the ticket
    reply_key: DesKey            # seals the reply body
    session_key: bytes
    server_field: Principal      # body's server field
    issue_time: float
    life: float
    kvno: int
    request_timestamp: float

    def body(self, ticket_blob: bytes) -> KdcReplyBody:
        return KdcReplyBody(
            session_key=self.session_key,
            server=self.server_field,
            issue_time=self.issue_time,
            life=self.life,
            kvno=self.kvno,
            request_timestamp=self.request_timestamp,
            ticket=ticket_blob,
        )


class _BufferDatagram(NamedTuple):
    """A datagram-shaped view over one frame of a request buffer, for
    driving the batch plane without the network simulator."""

    payload: memoryview
    src: IPAddress
    trace: Optional[object] = None


class KerberosServer(Service):
    """An authentication server on a host's Kerberos port.

    Runs against the master database or any read-only slave copy —
    authentication "can run on both master and slave machines"
    (Figure 10).

    With ``workers`` (or a full :class:`WorkQueueConfig` via ``queue``)
    the server runs a **concurrent service loop**: arrivals queue into a
    bounded :class:`WorkQueue` on the network runtime and are answered
    from worker batch completions (:class:`DeferredReply`); a full queue
    sheds the request with a :class:`~repro.core.errors.KdcOverloaded`
    error reply the client's failover path rides out to another KDC.
    Batches amortize database record lookups across their requests.
    Without ``workers`` the classic inline handler is used — zero service
    time, answered at arrival.
    """

    def __init__(
        self,
        database: KerberosDatabase,
        keygen: Optional[KeyGenerator] = None,
        skew: float = CLOCK_SKEW,
        port: int = KERBEROS_PORT,
        workers: Optional[int] = None,
        queue: Optional[WorkQueueConfig] = None,
        shard=None,
    ) -> None:
        super().__init__()
        if keygen is None:
            raise ValueError("KerberosServer requires a keygen")
        self.db = database
        self.realm = database.realm
        self.keygen = keygen
        self.skew = skew
        self.port = port
        #: :class:`~repro.realm.sharding.ShardMembership` when this KDC
        #: serves one shard of a partitioned realm; None for the classic
        #: whole-realm server.  Checked only on the unknown-client path —
        #: a record present locally is always served, which is exactly
        #: the double-serve behaviour a range move relies on.
        self.shard = shard
        if queue is None and workers is not None:
            queue = WorkQueueConfig(workers=workers)
        elif queue is not None and workers is not None and queue.workers != workers:
            raise ValueError("pass either workers or queue, not both")
        self.queue_config = queue
        self.workqueue: Optional[WorkQueue] = None
        self._batch_records = None

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        host = self.host
        # Metrics, tracing, and the audit plane (Figure 10 / Section 9)
        # live on the network; this server's series carry a `server`
        # label so master and slave load can be told apart.
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        self.audit = host.network.audit
        self._labels = {"server": host.name}
        self.replay_cache = ReplayCache(
            window=self.skew, metrics=self.metrics, labels=self._labels,
            audit=self.audit, host=host.name,
        )
        for kind in ("as", "tgs"):
            self.metrics.counter(
                "kdc.requests_total", {**self._labels, "kind": kind}
            )
            self.metrics.counter(
                "kdc.outcomes_total",
                {**self._labels, "kind": kind, "code": "OK"},
            )
        self.metrics.counter("kdc.skeleton_hits_total", self._labels)
        if self.shard is not None:
            self.metrics.counter("kdc.referrals_total", self._labels)
        # Principal mutations (kadmin writes on a master, dump/delta
        # application on a slave) flush the sealed-ticket skeleton cache
        # — content addressing already guarantees a changed key can't
        # hit, this promptly reclaims the dead entries.
        if self._on_db_mutation not in self.db.mutation_listeners:
            self.db.mutation_listeners.append(self._on_db_mutation)
        if self.queue_config is not None:
            self.workqueue = WorkQueue(
                host.network.runtime,
                self.queue_config,
                self._process_batch,
                label="kdc.queue",
                metrics=self.metrics,
                labels=self._labels,
                tracer=self.tracer,
            )

    def on_detach(self) -> None:
        self.workqueue = None
        if self._on_db_mutation in self.db.mutation_listeners:
            self.db.mutation_listeners.remove(self._on_db_mutation)

    def _on_db_mutation(self) -> None:
        keycache.invalidate_skeletons()

    def on_crash(self) -> None:
        """The host died: queued requests are gone — their senders hear
        nothing and fail over.  (In-flight batch completions check host
        state and drop their replies too.)"""
        if self.workqueue is not None:
            for _datagram, deferred in self.workqueue.drop_pending():
                deferred.resolve(None)

    def on_restart(self) -> None:
        """The daemon restarts with an empty queue (already dropped at
        crash time); durable state — the database — survived."""

    # -- registry-backed views of the classic counters -------------------------

    @property
    def as_requests(self) -> int:
        return int(self.metrics.total(
            "kdc.requests_total", kind="as", **self._labels
        ))

    @property
    def tgs_requests(self) -> int:
        return int(self.metrics.total(
            "kdc.requests_total", kind="tgs", **self._labels
        ))

    @property
    def errors(self) -> int:
        """Requests answered with an error reply (any kind, any code)."""
        all_outcomes = self.metrics.total(
            "kdc.outcomes_total", **self._labels
        )
        ok = self.metrics.total(
            "kdc.outcomes_total", code="OK", **self._labels
        )
        return int(all_outcomes - ok)

    def _outcome(self, kind: str, code: str) -> None:
        self.metrics.counter(
            "kdc.outcomes_total", {**self._labels, "kind": kind, "code": code}
        ).inc()

    # -- dispatch -------------------------------------------------------------

    def _handle(self, datagram):
        """Port handler: inline service, or admission into the queue."""
        if self.workqueue is None:
            return self._serve(datagram)
        deferred = DeferredReply()
        if not self.workqueue.submit((datagram, deferred), trace=datagram.trace):
            # Admission control: answer *now* with a typed overload
            # error instead of letting the request rot in a full queue.
            err = error_for_code(
                ErrorCode.KDC_OVERLOADED,
                f"KDC {self.host.name} shed the request (queue full)",
            )
            self._outcome("shed", err.code.name)
            self.audit.emit(
                "overload_shed",
                host=self.host.name,
                trace=datagram.trace,
                detail=f"queue full (limit {self.queue_config.queue_limit})",
            )
            return encode_message(
                MessageType.ERROR, ErrorReply.from_error(err)
            )
        return deferred

    def _process_batch(self, batch) -> None:
        """Worker completion: answer every request in the batch.

        Runs at the batch's simulated completion time.  The whole batch
        flows through the staged pipeline (:meth:`_serve_batch`):
        decode-all → lookup-all (one memoized DB pass) → seal-all (two
        messages per Feistel pass) → encode-all (one output buffer).
        """
        if self.host is None or not self.host.up:
            # Crashed mid-service: the replies die with the process.
            for _datagram, deferred in batch:
                deferred.resolve(None)
            return
        # Per-item queue wait, from the queue's batch metadata (enqueue
        # → service start); the batch's service cost is shared evenly.
        meta = self.workqueue.current_batch
        dispatched = self.workqueue.current_batch_dispatched_at
        waits = [None] * len(batch)
        if meta is not None and dispatched is not None:
            waits = [dispatched - entry.enqueued_at for entry in meta]
        service_each = self.queue_config.batch_cost(len(batch)) / len(batch)
        replies = self._serve_batch(
            [datagram for datagram, _deferred in batch],
            waits=waits,
            service_each=service_each,
        )
        for (_datagram, deferred), reply in zip(batch, replies):
            deferred.resolve(bytes(reply))

    def process_request_buffer(self, buffer, src) -> List[memoryview]:
        """Drive the batch plane from one contiguous buffer of
        length-prefixed request frames, returning one reply view per
        frame (in order).

        This is the zero-copy front door the open-loop saturation
        benchmark uses: :class:`BatchReader` slices each request out of
        the buffer as a ``memoryview`` and the replies come back as
        views into one :class:`BatchWriter` output buffer.
        """
        frames = BatchReader(buffer).frames()
        src = IPAddress(src)
        return self._serve_batch(
            [_BufferDatagram(payload=frame, src=src) for frame in frames]
        )

    def _serve_batch(
        self, datagrams, waits=None, service_each=None
    ) -> List[memoryview]:
        """The batch-aware request plane: explicit decode-all →
        lookup-all → seal-all → encode-all stages over one batch.

        Item failures are per-item: a garbage frame or a typed
        :class:`KerberosError` becomes that slot's error reply and the
        rest of the batch proceeds.  Replies are bit-identical to
        :meth:`_serve` answering each datagram alone — keygen state is
        consumed in item order, and the split/interleaved seals are
        bit-exact by construction.
        """
        n = len(datagrams)
        if waits is None:
            waits = [None] * n
        self.metrics.histogram(
            "kdc.batch_size", BATCH_SIZE_BUCKETS, self._labels
        ).observe(n)
        fresh_memo = self._batch_records is None
        if fresh_memo:
            self._batch_records = {}
        try:
            now = self.host.clock.now()
            # -- stage 1: decode-all ---------------------------------------
            kinds = ["other"] * n
            errors: List[Optional[KerberosError]] = [None] * n
            messages = [None] * n
            principals = [""] * n
            for i, datagram in enumerate(datagrams):
                try:
                    mtype, message = decode_message(datagram.payload)
                except KerberosError as err:
                    errors[i] = err
                    continue
                if mtype in (MessageType.AS_REQ, MessageType.PREAUTH_AS_REQ):
                    kinds[i] = "as"
                elif mtype == MessageType.TGS_REQ:
                    kinds[i] = "tgs"
                else:
                    errors[i] = KerberosError(
                        ErrorCode.KDC_GEN_ERR,
                        f"KDC does not handle {mtype.name} messages",
                    )
                    continue
                messages[i] = message
                principals[i] = str(getattr(message, "client", "") or "")
                self.metrics.counter(
                    "kdc.requests_total", {**self._labels, "kind": kinds[i]}
                ).inc()
            # -- stage 2: lookup-all (one memoized DB pass) ----------------
            lookups_before = self.metrics.total(
                "kdc.batch_lookups_saved_total", **self._labels
            )
            prepared: List[Optional[_Prepared]] = [None] * n
            crypto_ops = [0] * n
            for i, message in enumerate(messages):
                if message is None:
                    continue
                crypto_before = self.metrics.total("crypto.keyschedule_total")
                try:
                    if kinds[i] == "as":
                        prepared[i] = self._prepare_as(
                            message, datagrams[i], now
                        )
                    else:
                        prepared[i] = self._prepare_tgs(
                            message, datagrams[i], now
                        )
                    principals[i] = prepared[i].principal
                except KerberosError as err:
                    errors[i] = err
                crypto_ops[i] = int(
                    self.metrics.total("crypto.keyschedule_total")
                    - crypto_before
                )
            # -- stage 3: seal-all (interleaved kernel) --------------------
            ready = [p for p in prepared if p is not None]
            blocks_before = interleaved_blocks()
            hits_before = keycache.skeleton_stats()["hit"]
            ticket_blobs = seal_resume_many([
                (p.service_key,) + ticket_seal_job(p.ticket, p.service_key)
                for p in ready
            ])
            skeleton_hits = keycache.skeleton_stats()["hit"] - hits_before
            if skeleton_hits:
                self.metrics.counter(
                    "kdc.skeleton_hits_total", self._labels
                ).inc(skeleton_hits)
            sealed_bodies = seal_many([
                (p.reply_key, p.body(blob).to_bytes())
                for p, blob in zip(ready, ticket_blobs)
            ])
            # -- stage 4: encode-all (one output buffer) -------------------
            writer = BatchWriter()
            sealed_iter = iter(sealed_bodies)
            for i in range(n):
                p = prepared[i]
                if p is not None:
                    writer.add(p.mtype, KdcReply(
                        client=p.client, sealed_body=next(sealed_iter)
                    ))
                else:
                    writer.add(
                        MessageType.ERROR, ErrorReply.from_error(errors[i])
                    )
            replies = writer.finish()
            # -- per-item observability ------------------------------------
            # Per-stage work counts (deterministic — wall clocks are
            # banned under src/repro): how much of the batch survived
            # decode, how many DB round-trips the memo saved, and what
            # the pooled crypto/encode stages actually did.
            stage_attrs = {
                "stage_decoded": n - sum(m is None for m in messages),
                "stage_lookups_saved": int(self.metrics.total(
                    "kdc.batch_lookups_saved_total", **self._labels
                ) - lookups_before),
                "stage_sealed": len(ready),
                "stage_interleaved_blocks": interleaved_blocks()
                - blocks_before,
                "stage_skeleton_hits": skeleton_hits,
                "stage_encoded_bytes": sum(len(r) for r in replies),
            }
            for i, datagram in enumerate(datagrams):
                kind = kinds[i]
                with self.tracer.span_under(
                    datagram.trace,
                    f"kdc.{kind}",
                    server=self.host.name,
                    host=self.host.name,
                ) as span:
                    if waits[i] is not None:
                        span.attrs["queue_wait"] = round(waits[i], 9)
                        span.attrs["service_time"] = round(service_each, 9)
                    span.attrs["batch_size"] = n
                    span.attrs["crypto_ops"] = crypto_ops[i]
                    span.attrs.update(stage_attrs)
                if errors[i] is None:
                    self._outcome(kind, "OK")
                    self.audit.emit(
                        "auth_success",
                        host=self.host.name,
                        principal=principals[i],
                        trace=datagram.trace,
                        detail=f"kind={kind}",
                    )
                else:
                    self._outcome(kind, errors[i].code.name)
                    self._serving_principal = principals[i]
                    self._audit_failure(kind, errors[i], datagram)
            return replies
        finally:
            if fresh_memo:
                self._batch_records = None

    def _get_record(self, principal: Principal) -> PrincipalRecord:
        """DB row fetch, memoized across the current batch."""
        if self._batch_records is None:
            return self.db.get_record(principal)
        record = self._batch_records.get(principal)
        if record is None:
            record = self.db.get_record(principal)
            self._batch_records[principal] = record
        else:
            self.metrics.counter(
                "kdc.batch_lookups_saved_total", self._labels
            ).inc()
        return record

    def _serve(
        self,
        datagram,
        queue_wait=None,
        batch_size=None,
        service_time=None,
    ) -> bytes:
        """Answer one request.  The handler span parents to the
        datagram's *propagated* trace context (:meth:`Tracer.span_under`)
        — not the pumping caller's stack — and carries the latency
        breakdown: queue wait, batch size, per-item service time, and
        the crypto work (key-schedule touches) the request cost."""
        kind = "other"
        self._serving_principal = ""
        try:
            mtype, message = decode_message(datagram.payload)
            if mtype in (MessageType.AS_REQ, MessageType.PREAUTH_AS_REQ):
                kind = "as"
            elif mtype == MessageType.TGS_REQ:
                kind = "tgs"
            if kind != "other":
                self.metrics.counter(
                    "kdc.requests_total", {**self._labels, "kind": kind}
                ).inc()
            # AS requests name their client in the clear; TGS handlers
            # fill the principal in once the TGT authenticates it.
            self._serving_principal = str(getattr(message, "client", "") or "")
            with self.tracer.span_under(
                datagram.trace,
                f"kdc.{kind}",
                server=self.host.name,
                host=self.host.name,
            ) as span:
                if queue_wait is not None:
                    span.attrs["queue_wait"] = round(queue_wait, 9)
                    span.attrs["batch_size"] = batch_size
                    span.attrs["service_time"] = round(service_time, 9)
                crypto_before = self.metrics.total("crypto.keyschedule_total")
                if kind == "as":
                    reply = self._handle_as(message, datagram)
                elif kind == "tgs":
                    reply = self._handle_tgs(message, datagram)
                else:
                    raise KerberosError(
                        ErrorCode.KDC_GEN_ERR,
                        f"KDC does not handle {mtype.name} messages",
                    )
                span.attrs["crypto_ops"] = int(
                    self.metrics.total("crypto.keyschedule_total")
                    - crypto_before
                )
            self._outcome(kind, "OK")
            self.audit.emit(
                "auth_success",
                host=self.host.name,
                principal=self._serving_principal,
                trace=datagram.trace,
                detail=f"kind={kind}",
            )
            return reply
        except KerberosError as err:
            self._outcome(kind, err.code.name)
            self._audit_failure(kind, err, datagram)
            return encode_message(MessageType.ERROR, ErrorReply.from_error(err))

    def _audit_failure(self, kind: str, err: KerberosError, datagram) -> None:
        """Map a failed exchange to its audit event.  Replays are
        already reported by the replay cache itself; a PREAUTH_REQUIRED
        bounce is normal negotiation (the client retries with proof),
        not a security event."""
        if err.code in (ErrorCode.RD_AP_REPEAT, ErrorCode.KDC_PREAUTH_REQUIRED):
            return
        event = (
            "preauth_failure"
            if err.code == ErrorCode.KDC_PREAUTH_FAILED
            else "auth_failure"
        )
        self.audit.emit(
            event,
            host=self.host.name,
            principal=self._serving_principal,
            trace=datagram.trace,
            detail=f"kind={kind} code={err.code.name}",
        )

    # -- shared pieces -----------------------------------------------------------

    def _lookup_client(self, client: Principal, now: float) -> PrincipalRecord:
        try:
            record = self._get_record(client)
        except NoSuchPrincipal as exc:
            # In a sharded realm an unknown client is first checked
            # against the ring: a principal another shard owns gets a
            # typed referral naming the owner, not PR_UNKNOWN.  Records
            # present locally never reach this branch — so a range being
            # double-served during a move answers normally.
            if self.shard is not None:
                referral = self.shard.referral_for(client.db_key())
                if referral is not None:
                    self.metrics.counter(
                        "kdc.referrals_total", self._labels
                    ).inc()
                    raise referral from exc
            raise KerberosError(ErrorCode.KDC_PR_UNKNOWN, str(exc)) from exc
        if record.expired(now):
            raise KerberosError(
                ErrorCode.KDC_PR_EXPIRED, f"principal {client} has expired"
            )
        if record.disabled:
            raise KerberosError(
                ErrorCode.KDC_PR_DISABLED, f"principal {client} is disabled"
            )
        return record

    def _lookup_service(self, service: Principal, now: float) -> PrincipalRecord:
        try:
            record = self._get_record(service)
        except NoSuchPrincipal as exc:
            raise KerberosError(ErrorCode.KDC_SERVICE_UNKNOWN, str(exc)) from exc
        if record.expired(now):
            raise KerberosError(
                ErrorCode.KDC_SERVICE_EXPIRED, f"service {service} has expired"
            )
        return record

    def _prepare_issue(
        self,
        client: Principal,
        service: Principal,
        service_record: PrincipalRecord,
        address: IPAddress,
        life: float,
        now: float,
        kind: str = "as",
    ):
        """Everything :meth:`_issue`-shaped except the sealing itself:
        draws the session key, builds the plaintext ticket, unseals the
        service key.  Returns (ticket, service_key, session_key_bytes).
        The seal happens downstream — inline for the single plane,
        batched through the interleaved kernel for the batch plane."""
        self.metrics.histogram(
            "kdc.ticket_life_seconds",
            LIFETIME_BUCKETS,
            {**self._labels, "kind": kind},
        ).observe(life)
        # The KDC never encrypts with a session key, it only embeds the
        # bytes — so skip the key-schedule expansion entirely.
        session_key = self.keygen.session_key_bytes()
        ticket = Ticket(
            server=self._canonical_ticket_server(service),
            client=client,
            address=IPAddress(address).as_int,
            timestamp=now,
            life=life,
            session_key=session_key,
        )
        service_key = self.db.master_key.unseal_key(service_record.sealed_key)
        return ticket, service_key, session_key

    def _finish_prepared(self, prepared: _Prepared) -> bytes:
        """Single-request completion of a prepared exchange: seal the
        ticket (skeleton-cached), seal the reply body, encode.  The
        batch plane performs these same steps across the whole batch."""
        ticket_blob = seal_ticket_cached(prepared.ticket, prepared.service_key)
        reply = KdcReply.build(
            prepared.client, prepared.body(ticket_blob), prepared.reply_key
        )
        return encode_message(prepared.mtype, reply)

    def _canonical_ticket_server(self, service: Principal) -> Principal:
        """Tickets for a *remote* TGS (cross-realm) are written with the
        server as that realm knows itself, so the remote KDC's own
        identity check passes."""
        if service.is_tgs and service.instance != self.realm:
            return tgs_principal(service.instance)
        return service.with_realm(self.realm)

    # -- the authentication service (Figure 5) --------------------------------------

    def _handle_as(self, request, datagram) -> bytes:
        return self._finish_prepared(
            self._prepare_as(request, datagram, self.host.clock.now())
        )

    def _prepare_as(self, request, datagram, now: float) -> _Prepared:
        client_record = self._lookup_client(request.client, now)
        service_record = self._lookup_service(request.service, now)

        # Single-pass: the client key is needed to seal the reply in every
        # successful exchange, so unseal it once up front and reuse it for
        # preauth verification instead of unsealing per use.
        client_key = self.db.master_key.unseal_key(client_record.sealed_key)

        # Preauthentication (extension, see PreauthAsRequest): principals
        # flagged require-preauth get no reply without proof of their key.
        if client_record.requires_preauth:
            if not isinstance(request, PreauthAsRequest):
                raise KerberosError(
                    ErrorCode.KDC_PREAUTH_REQUIRED,
                    f"{request.client} requires preauthentication",
                )
            if abs(now - request.timestamp) > self.skew:
                raise KerberosError(
                    ErrorCode.KDC_PREAUTH_FAILED,
                    "preauthentication timestamp outside the skew window",
                )
            if not verify_preauth(
                request.preauth, client_key, request.timestamp
            ):
                raise KerberosError(
                    ErrorCode.KDC_PREAUTH_FAILED,
                    "preauthentication did not verify",
                )

        life = max(0.0, min(
            request.requested_life,
            client_record.max_life,
            service_record.max_life,
        ))
        client = request.client.with_realm(self.realm)
        ticket, service_key, session_key = self._prepare_issue(
            client=client,
            service=request.service,
            service_record=service_record,
            address=datagram.src,
            life=life,
            now=now,
            kind="as",
        )
        return _Prepared(
            kind="as",
            mtype=MessageType.AS_REP,
            client=client,
            principal=str(request.client),
            ticket=ticket,
            service_key=service_key,
            reply_key=client_key,
            session_key=session_key,
            server_field=request.service.with_realm(
                request.service.realm or self.realm
            ),
            issue_time=now,
            life=life,
            kvno=service_record.key_version,
            request_timestamp=request.timestamp,
        )

    # -- the ticket-granting service (Figure 8, Section 7.2) ---------------------------

    def _tgt_key(self, tgt_realm: str) -> DesKey:
        """The key that should open the presented TGT: our own TGS key for
        local TGTs, the inter-realm key for foreign ones."""
        if tgt_realm == self.realm:
            return self.db.principal_key(tgs_principal(self.realm))
        try:
            return self.db.principal_key(
                Principal(XREALM_NAME, tgt_realm, self.realm)
            )
        except NoSuchPrincipal:
            raise KerberosError(
                ErrorCode.KDC_NO_CROSS_REALM,
                f"no inter-realm key with {tgt_realm}",
            ) from None

    def _handle_tgs(self, request: TgsRequest, datagram) -> bytes:
        return self._finish_prepared(
            self._prepare_tgs(request, datagram, self.host.clock.now())
        )

    def _prepare_tgs(
        self, request: TgsRequest, datagram, now: float
    ) -> _Prepared:
        tgt_key = self._tgt_key(request.tgt_realm)

        # "The ticket-granting server then checks the authenticator and
        # ticket-granting ticket as described above" — the full Figure 6
        # validation, with the TGS itself as the target service.
        context = krb_rd_req(
            request=_as_ap_request(request),
            service=tgs_principal(self.realm),
            service_key_or_srvtab=tgt_key,
            packet_address=datagram.src,
            now=now,
            replay_cache=self.replay_cache,
            skew=self.skew,
        )
        client = context.client  # realm preserved from the TGT (Sec. 7.2)
        self._serving_principal = str(client)

        service_record = self._lookup_service(request.service, now)
        # Section 5.1: "the ticket-granting service will not issue
        # tickets for it" — services flagged no-TGT (the KDBM) must be
        # reached through the authentication service instead.
        if not service_record.tgt_allowed:
            raise KerberosError(
                ErrorCode.KDC_PR_NOTGT,
                f"{request.service} tickets are only issued by the "
                "authentication service (a password is required)",
            )
        # The paper stops at one hop: a foreign client may use local
        # services, but chaining onward to a third realm would require
        # recording "the entire path that was taken" (Section 7.2).
        is_remote_tgs = (
            request.service.is_tgs and request.service.instance != self.realm
        )
        if is_remote_tgs and client.realm != self.realm:
            raise KerberosError(
                ErrorCode.KDC_NO_CROSS_REALM,
                "realm chaining not supported: only the initial "
                "authentication realm is recorded in tickets",
            )

        # "The lifetime of the new ticket is the minimum of the remaining
        # life for the ticket-granting ticket and the default for the
        # service."
        life = max(0.0, min(
            request.requested_life,
            context.ticket.remaining_life(now),
            service_record.max_life,
        ))
        ticket, service_key, session_key = self._prepare_issue(
            client=client,
            service=request.service,
            service_record=service_record,
            address=datagram.src,
            life=life,
            now=now,
            kind="tgs",
        )
        # "the reply is encrypted in the session key that was part of the
        # ticket-granting ticket" — no password needed again.
        return _Prepared(
            kind="tgs",
            mtype=MessageType.TGS_REP,
            client=client,
            principal=str(client),
            ticket=ticket,
            service_key=service_key,
            reply_key=context.session_key,
            session_key=session_key,
            server_field=request.service.with_realm(
                request.service.realm or self.realm
            ),
            issue_time=now,
            life=life,
            kvno=service_record.key_version,
            request_timestamp=request.timestamp,
        )


def _as_ap_request(request: TgsRequest):
    """View the TGT+authenticator of a TGS request as an AP request, so the
    TGS can reuse the standard krb_rd_req validation (the paper: the
    ticket-granting service 'makes use of the service access protocol
    described in the previous section')."""
    from repro.core.messages import ApRequest

    return ApRequest(
        ticket=request.tgt,
        authenticator=request.authenticator,
        mutual=False,
        kvno=0,
    )
