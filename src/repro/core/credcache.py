"""The credential cache — the workstation's ticket file.

Paper, Section 4.2: *"The ticket and the session key, along with some of
the other information, are stored for future use, and the user's
password and DES key are erased from memory."*  Section 6.1: tickets
"are automatically destroyed when a user logs out" (kdestroy), and
"a user executing the klist command ... may be surprised at all the
tickets which have silently been obtained on her/his behalf".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto import DesKey
from repro.principal import Principal, tgs_principal


@dataclass
class Credential:
    """One cached (service, ticket, session key) entry."""

    service: Principal
    ticket: bytes
    session_key: DesKey
    issue_time: float
    life: float
    kvno: int

    @property
    def expires(self) -> float:
        return self.issue_time + self.life

    def expired(self, now: float) -> bool:
        return now >= self.expires

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires - now)


class CredentialCache:
    """Per-login-session ticket storage, keyed by service principal.

    With a :class:`repro.obs.MetricsRegistry` attached, lookups count
    into ``credcache.lookups_total{result="hit"|"miss"}`` — the series
    behind the Section 9 claim that ticket reuse keeps KDC traffic well
    below one request per service use.
    """

    def __init__(
        self, owner: Optional[Principal] = None, metrics=None
    ) -> None:
        self.owner = owner
        self._creds: Dict[str, Credential] = {}
        if metrics is not None:
            self._hit = metrics.counter(
                "credcache.lookups_total", {"result": "hit"}
            )
            self._miss = metrics.counter(
                "credcache.lookups_total", {"result": "miss"}
            )
        else:
            self._hit = self._miss = None

    def store(self, cred: Credential) -> None:
        self._creds[str(cred.service)] = cred

    def get(self, service: Principal, now: Optional[float] = None) -> Optional[Credential]:
        """Fetch a usable credential; expired entries are not returned
        (the paper's 6.1 scenario: an expired ticket makes the
        application fail, prompting a fresh kinit)."""
        cred = self._creds.get(str(service))
        if cred is not None and now is not None and cred.expired(now):
            cred = None
        if self._hit is not None:
            (self._miss if cred is None else self._hit).inc()
        return cred

    def tgt(self, realm: str, now: Optional[float] = None) -> Optional[Credential]:
        """The ticket-granting ticket for ``realm``, if still valid."""
        return self.get(tgs_principal(realm), now=now)

    def remote_tgt(
        self, local_realm: str, remote_realm: str, now: Optional[float] = None
    ) -> Optional[Credential]:
        """A cross-realm TGT (Section 7.2) issued by the local realm."""
        return self.get(tgs_principal(local_realm, remote_realm), now=now)

    def list(self) -> List[Credential]:
        """Everything in the cache — the klist view."""
        return sorted(self._creds.values(), key=lambda c: str(c.service))

    def destroy(self) -> int:
        """kdestroy: wipe every credential; returns how many were held."""
        count = len(self._creds)
        self._creds.clear()
        self.owner = None
        return count

    def purge_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        dead = [k for k, c in self._creds.items() if c.expired(now)]
        for k in dead:
            del self._creds[k]
        return len(dead)

    def __len__(self) -> int:
        return len(self._creds)

    def __contains__(self, service: Principal) -> bool:
        return str(service) in self._creds
