"""Kerberos protocol error codes.

The codes mirror the historical library's families: ``KDC_*`` for errors
returned by the authentication/ticket-granting server, ``RD_AP_*`` for
failures detected by a server reading an authentication request
(Section 4.3's checks), and ``INTK_*`` for client-side failures getting
an initial ticket (Section 4.2 — the wrong-password case).
"""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """Protocol error codes carried in error replies."""

    # KDC (authentication / ticket-granting server) errors.
    KDC_OK = 0
    KDC_PR_UNKNOWN = 1        # principal unknown ("checks that it knows about the client")
    KDC_PR_EXPIRED = 2        # principal entry expired
    KDC_PR_DISABLED = 3       # principal administratively disabled
    KDC_SERVICE_UNKNOWN = 4   # target service not registered
    KDC_SERVICE_EXPIRED = 5
    KDC_PR_NOTGT = 6          # TGS will not issue tickets for this service (Sec. 5.1)
    KDC_NO_CROSS_REALM = 7    # no inter-realm key with the TGT's realm (Sec. 7.2)
    KDC_GEN_ERR = 8           # malformed or undecodable request
    KDC_PREAUTH_REQUIRED = 9  # extension: principal requires preauthentication
    KDC_PREAUTH_FAILED = 10   # extension: preauthentication did not verify

    # Application-request (rd_req) errors.
    RD_AP_MODIFIED = 20       # ticket or authenticator failed to decrypt/verify
    RD_AP_TIME = 21           # authenticator timestamp outside the skew window
    RD_AP_REPEAT = 22         # same ticket and timestamp already seen (replay)
    RD_AP_BADD = 23           # address mismatch (ticket vs authenticator vs packet)
    RD_AP_EXP = 24            # ticket expired
    RD_AP_NYV = 25            # ticket not yet valid (issued in the future)
    RD_AP_PRINCIPAL = 26      # authenticator names a different client than ticket
    RD_AP_VERSION = 27        # unknown key version (stale srvtab)

    # Client-side initial-ticket errors.
    INTK_BADPW = 40           # reply would not decrypt: wrong password
    INTK_PROT = 41            # malformed reply

    # KDBM (administration) errors.
    KDBM_DENIED = 60          # requester not authorized (Sec. 5.1 ACL check)
    KDBM_READONLY = 61        # request reached a slave (Fig. 11)
    KDBM_ERROR = 62

    # Transport / application errors.
    APP_ERROR = 80


class KerberosError(Exception):
    """A protocol-level failure, carrying its :class:`ErrorCode`."""

    def __init__(self, code: ErrorCode, message: str = "") -> None:
        self.code = ErrorCode(code)
        self.message = message or self.code.name
        super().__init__(f"{self.code.name}: {self.message}")
