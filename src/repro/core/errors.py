"""Kerberos protocol error codes.

The codes mirror the historical library's families: ``KDC_*`` for errors
returned by the authentication/ticket-granting server, ``RD_AP_*`` for
failures detected by a server reading an authentication request
(Section 4.3's checks), and ``INTK_*`` for client-side failures getting
an initial ticket (Section 4.2 — the wrong-password case).

Every wire error code maps to exactly one exception class through
:func:`error_for_code` — the *single* code↔exception mapping in the
tree.  Decoders raise through it, so callers catch *types*
(``except PreauthRequired``) instead of matching ``exc.code`` or error
strings.  :class:`KdcOverloaded` deliberately subclasses the transport's
:class:`~repro.netsim.network.Unreachable` too: an overloaded KDC is
operationally a KDC you could not reach, and the client's retry/failover
path (which retries on ``Unreachable``) rides it out to a slave without
any special case.
"""

from __future__ import annotations

import enum

from repro.netsim.network import Unreachable


class ErrorCode(enum.IntEnum):
    """Protocol error codes carried in error replies."""

    # KDC (authentication / ticket-granting server) errors.
    KDC_OK = 0
    KDC_PR_UNKNOWN = 1        # principal unknown ("checks that it knows about the client")
    KDC_PR_EXPIRED = 2        # principal entry expired
    KDC_PR_DISABLED = 3       # principal administratively disabled
    KDC_SERVICE_UNKNOWN = 4   # target service not registered
    KDC_SERVICE_EXPIRED = 5
    KDC_PR_NOTGT = 6          # TGS will not issue tickets for this service (Sec. 5.1)
    KDC_NO_CROSS_REALM = 7    # no inter-realm key with the TGT's realm (Sec. 7.2)
    KDC_GEN_ERR = 8           # malformed or undecodable request
    KDC_PREAUTH_REQUIRED = 9  # extension: principal requires preauthentication
    KDC_PREAUTH_FAILED = 10   # extension: preauthentication did not verify
    KDC_OVERLOADED = 11       # admission control shed the request (queue full)
    KDC_WRONG_SHARD = 12      # referral: another shard owns this principal

    # Application-request (rd_req) errors.
    RD_AP_MODIFIED = 20       # ticket or authenticator failed to decrypt/verify
    RD_AP_TIME = 21           # authenticator timestamp outside the skew window
    RD_AP_REPEAT = 22         # same ticket and timestamp already seen (replay)
    RD_AP_BADD = 23           # address mismatch (ticket vs authenticator vs packet)
    RD_AP_EXP = 24            # ticket expired
    RD_AP_NYV = 25            # ticket not yet valid (issued in the future)
    RD_AP_PRINCIPAL = 26      # authenticator names a different client than ticket
    RD_AP_VERSION = 27        # unknown key version (stale srvtab)

    # Client-side initial-ticket errors.
    INTK_BADPW = 40           # reply would not decrypt: wrong password
    INTK_PROT = 41            # malformed reply

    # KDBM (administration) errors.
    KDBM_DENIED = 60          # requester not authorized (Sec. 5.1 ACL check)
    KDBM_READONLY = 61        # request reached a slave (Fig. 11)
    KDBM_ERROR = 62

    # Transport / application errors.
    APP_ERROR = 80


class KerberosError(Exception):
    """A protocol-level failure, carrying its :class:`ErrorCode`."""

    def __init__(self, code: ErrorCode, message: str = "") -> None:
        self.code = ErrorCode(code)
        self.message = message or self.code.name
        super().__init__(f"{self.code.name}: {self.message}")


class KdcError(KerberosError):
    """An error reply from the authentication / ticket-granting server
    (the ``KDC_*`` family)."""


class PreauthRequired(KdcError):
    """The principal requires preauthentication; retry the AS exchange
    with a preauth proof (extension, see ``docs``)."""


class PreauthFailed(KdcError):
    """The preauthentication proof did not verify — a wrong password,
    observed *before* an offline-guessable reply leaves the KDC."""


class KdcOverloaded(KdcError, Unreachable):
    """Admission control shed the request: the KDC's inbound queue was
    full.  Also an :class:`Unreachable` so ``run_with_failover`` retries
    it against the next KDC exactly like a lost datagram."""


def referral_text(shard: int, ring_epoch: int, addresses) -> str:
    """Serialize a shard referral into an error reply's text field.

    Riding the existing :class:`ErrorReply` text keeps the v4 wire
    envelope untouched — a referral is just another error code, so the
    golden-vector suite stays frozen.
    """
    kdcs = ",".join(str(a) for a in addresses)
    return f"shard={int(shard)} epoch={int(ring_epoch)} kdcs={kdcs}"


class WrongShard(KdcError):
    """Referral from a sharded realm: this KDC's shard does not own the
    requested principal.  The message text carries the authoritative
    shard id, the referring KDC's ring epoch, and that shard's KDC
    addresses (``shard=N epoch=M kdcs=a,b,c``) — enough for the client
    to re-send without waiting for a full discovery refresh."""

    def _field(self, name: str, default: str = "") -> str:
        for token in self.message.split():
            if token.startswith(name + "="):
                return token[len(name) + 1:]
        return default

    @property
    def shard(self) -> int:
        try:
            return int(self._field("shard", "-1"))
        except ValueError:
            return -1

    @property
    def ring_epoch(self) -> int:
        try:
            return int(self._field("epoch", "0"))
        except ValueError:
            return 0

    @property
    def kdcs(self) -> list:
        field = self._field("kdcs")
        return [a for a in field.split(",") if a]


class RdApError(KerberosError):
    """A server rejected an application request (the ``RD_AP_*`` family
    — Section 4.3's authenticator checks)."""


class IntkError(KerberosError):
    """The client could not turn a KDC reply into an initial ticket
    (the ``INTK_*`` family — wrong password, malformed reply)."""


class KdbmError(KerberosError):
    """An administration-server failure (the ``KDBM_*`` family)."""


#: Codes with a *specific* class; families below fill in the rest.
_SPECIFIC: dict = {
    ErrorCode.KDC_PREAUTH_REQUIRED: PreauthRequired,
    ErrorCode.KDC_PREAUTH_FAILED: PreauthFailed,
    ErrorCode.KDC_OVERLOADED: KdcOverloaded,
    ErrorCode.KDC_WRONG_SHARD: WrongShard,
}

_FAMILIES = (
    (ErrorCode.KDC_OK, ErrorCode.KDC_WRONG_SHARD, KdcError),
    (ErrorCode.RD_AP_MODIFIED, ErrorCode.RD_AP_VERSION, RdApError),
    (ErrorCode.INTK_BADPW, ErrorCode.INTK_PROT, IntkError),
    (ErrorCode.KDBM_DENIED, ErrorCode.KDBM_ERROR, KdbmError),
)


def exception_class_for(code: ErrorCode) -> type:
    """The exception class a wire error code decodes to."""
    code = ErrorCode(code)
    specific = _SPECIFIC.get(code)
    if specific is not None:
        return specific
    for low, high, family in _FAMILIES:
        if low <= code <= high:
            return family
    return KerberosError


def error_for_code(code, message: str = "") -> KerberosError:
    """Build the typed exception for a wire error code.

    The one place protocol error codes become Python exceptions; every
    decoder (``ErrorReply.raise_``, the kdbm client) routes through it
    so ``except PreauthRequired`` and friends work everywhere.
    """
    return exception_class_for(ErrorCode(code))(ErrorCode(code), message)
