"""Kerberos tickets (paper Section 4.1, Figure 3).

*"A ticket is good for a single server and a single client.  It contains
the name of the server, the name of the client, the Internet address of
the client, a time stamp, a lifetime, and a random session key.  This
information is encrypted using the key of the server for which the
ticket will be used."*

Figure 3::

    {s, c, addr, timestamp, life, K_s,c} K_s

Because the ticket is sealed in the server's key, "it is safe to allow
the user to pass the ticket on to the server without having to worry
about the user modifying the ticket".  To everyone but the issuing KDC
and the target server a ticket is opaque bytes.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto import (
    DesKey,
    IntegrityError,
    keycache,
    seal,
    seal_prefix_state,
    seal_resume,
    unseal,
)
from repro.core.errors import ErrorCode, KerberosError
from repro.encode import DecodeError, WireStruct, field
from repro.netsim import IPAddress
from repro.principal import Principal


class Ticket(WireStruct):
    """The plaintext content of a ticket — exactly Figure 3's six fields."""

    FIELDS = (
        field("server", Principal),     # s
        field("client", Principal),     # c  (client realm records where the
                                        #     user originally authenticated,
                                        #     Section 7.2)
        field("address", "u32"),        # addr
        field("timestamp", "f64"),      # time of issue
        field("life", "f64"),           # lifetime in seconds
        field("session_key", "bytes"),  # K_s,c
    )

    # -- validity ----------------------------------------------------------

    @property
    def expires(self) -> float:
        return self.timestamp + self.life

    def expired(self, now: float, skew: float = 0.0) -> bool:
        return now > self.expires + skew

    def not_yet_valid(self, now: float, skew: float = 0.0) -> bool:
        return now < self.timestamp - skew

    def remaining_life(self, now: float) -> float:
        return max(0.0, self.expires - now)

    @property
    def key(self) -> DesKey:
        # Schedule-cached: servers touch .key several times per request
        # (authenticator unseal, mutual-auth reply, safe messages).
        return DesKey.from_bytes(self.session_key, allow_weak=True)

    @property
    def client_address(self) -> IPAddress:
        return IPAddress(self.address)

    def __repr__(self) -> str:
        return (
            f"Ticket(server={self.server}, client={self.client}, "
            f"addr={self.client_address}, t={self.timestamp}, "
            f"life={self.life})"
        )


def seal_ticket(ticket: Ticket, server_key: DesKey) -> bytes:
    """Encrypt a ticket in the target server's private key ({...}K_s)."""
    return seal(server_key, ticket.to_bytes())


# Trailing bytes of Ticket.to_bytes() that change per issuance: the
# timestamp (f64) and life (f64) fields plus the session_key bytes field
# (u32 length prefix + 8 key bytes).  Everything before them — server,
# client, address — repeats for every ticket a hot (client, server) pair
# is issued, which is what the skeleton cache exploits.
_TICKET_SUFFIX_LEN = 8 + 8 + 4 + 8


def ticket_seal_job(
    ticket: Ticket, server_key: DesKey
) -> Tuple[Tuple[bytes, int], bytes]:
    """Split a ticket seal into a resumable ``(state, suffix)`` pair.

    The PCBC state for the ticket's fixed prefix (seal header + server +
    client + address) comes from the process-wide skeleton cache when
    possible — the cache key is the literal (sealing key, total length,
    prefix plaintext) content, so a rotated service key or renamed
    principal can never hit a stale entry.  Finishing the job via
    :func:`repro.crypto.seal_resume` (or the KDC's batched
    ``seal_resume_many``) is bit-identical to :func:`seal_ticket`.
    """
    plain = ticket.to_bytes()
    cut = max(0, len(plain) - _TICKET_SUFFIX_LEN) & ~0x7
    prefix, suffix = plain[:cut], plain[cut:]
    cache_key = (server_key.key_bytes, len(plain), prefix)
    state = keycache.skeleton_get(cache_key)
    if state is None:
        state = seal_prefix_state(server_key, len(plain), prefix)
        keycache.skeleton_put(cache_key, state)
    return state, suffix


def seal_ticket_cached(ticket: Ticket, server_key: DesKey) -> bytes:
    """Skeleton-cached :func:`seal_ticket`: re-encrypts only the
    per-issuance suffix (timestamp, life, session key) when the ticket's
    fixed prefix was sealed before under the same key."""
    state, suffix = ticket_seal_job(ticket, server_key)
    return seal_resume(server_key, state, suffix)


def unseal_ticket(blob: bytes, server_key: DesKey) -> Ticket:
    """Decrypt and parse a ticket; only the named server (and the KDC that
    issued it) can do this.  A wrong key, a modified ticket, or garbage
    all raise ``RD_AP_MODIFIED`` — the indistinguishability is the point:
    tampering cannot be told apart from forgery."""
    try:
        return Ticket.from_bytes(unseal(server_key, blob))
    except (IntegrityError, DecodeError) as exc:
        raise KerberosError(
            ErrorCode.RD_AP_MODIFIED, f"ticket failed to decrypt: {exc}"
        ) from exc
