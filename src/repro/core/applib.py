"""The Kerberos applications library (paper Sections 2.2 and 6.2).

*"The most commonly used library functions are krb_mk_req on the client
side, and krb_rd_req on the server side."*  This module provides both,
plus the server-side key file:

* :func:`krb_mk_req` — build the message a client sends with its first
  request to a Kerberized service (ticket + fresh authenticator);
* :func:`krb_rd_req` — the server side: decrypt the ticket with the
  service key, decrypt the authenticator with the enclosed session key,
  and run every check Section 4.3 lists (identity match, address match,
  freshness, replay, expiry).  Returns a judgement in the form of an
  :class:`AuthContext` or raises :class:`KerberosError`;
* :func:`krb_mk_rep` / :func:`krb_rd_rep` — mutual authentication
  (Figure 7);
* :class:`SrvTab` — the in-memory form of ``/etc/srvtab``, which
  "authenticates the server as a password typed at a terminal
  authenticates the user" (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto import DesKey
from repro.core.authenticator import build_authenticator, unseal_authenticator
from repro.core.errors import ErrorCode, KerberosError
from repro.core.messages import ApReply, ApRequest
from repro.core.replay import CLOCK_SKEW, ReplayCache
from repro.core.ticket import Ticket, unseal_ticket
from repro.database.admin_tools import parse_srvtab
from repro.netsim import IPAddress
from repro.principal import Principal


class SrvTab:
    """Service keys installed on a server's machine (``/etc/srvtab``)."""

    def __init__(self) -> None:
        self._keys: Dict[Tuple[str, int], DesKey] = {}
        self._latest: Dict[str, int] = {}

    def install(self, service: Principal, kvno: int, key: DesKey) -> None:
        name = str(service)
        self._keys[(name, kvno)] = key
        self._latest[name] = max(self._latest.get(name, 0), kvno)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SrvTab":
        """Load the file ext_srvtab produced."""
        tab = cls()
        for principal, kvno, key_bytes in parse_srvtab(data):
            tab.install(principal, kvno, DesKey.from_bytes(key_bytes, allow_weak=True))
        return tab

    def key_for(self, service: Principal, kvno: Optional[int] = None) -> DesKey:
        name = str(service)
        if kvno is None:
            kvno = self._latest.get(name, 0)
        try:
            return self._keys[(name, kvno)]
        except KeyError:
            raise KerberosError(
                ErrorCode.RD_AP_VERSION,
                f"no key for {name} version {kvno} in srvtab",
            ) from None

    def services(self):
        return sorted(self._latest)

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class AuthContext:
    """krb_rd_req's judgement: who the client is, and the shared key.

    "At the end of this exchange, the server is certain that, according
    to Kerberos, the client is who it says it is.  Moreover, the client
    and server share a key which no one else knows."
    """

    client: Principal
    session_key: DesKey
    address: IPAddress
    authenticator_timestamp: float
    ticket: Ticket
    checksum: int


def krb_mk_req(
    ticket_blob: bytes,
    session_key: DesKey,
    client: Principal,
    client_address: IPAddress,
    now: float,
    mutual: bool = False,
    kvno: int = 1,
    checksum: int = 0,
) -> ApRequest:
    """Client side of Figure 6: package the ticket with a fresh
    authenticator sealed in the session key."""
    authenticator = build_authenticator(
        client=client,
        address=client_address,
        now=now,
        session_key=session_key,
        checksum=checksum,
    )
    return ApRequest(
        ticket=ticket_blob,
        authenticator=authenticator,
        mutual=mutual,
        kvno=kvno,
    )


def krb_rd_req(
    request: ApRequest,
    service: Principal,
    service_key_or_srvtab,
    packet_address: IPAddress,
    now: float,
    replay_cache: Optional[ReplayCache] = None,
    skew: float = CLOCK_SKEW,
) -> AuthContext:
    """Server side of Figure 6, running the full Section 4.3 checklist.

    *"the server decrypts the ticket, uses the session key included in
    the ticket to decrypt the authenticator, compares the information in
    the ticket with that in the authenticator, the IP address from which
    the request was received, and the present time.  If everything
    matches, it allows the request to proceed."*
    """
    if isinstance(service_key_or_srvtab, SrvTab):
        service_key = service_key_or_srvtab.key_for(service, request.kvno)
    else:
        service_key = service_key_or_srvtab

    ticket = unseal_ticket(request.ticket, service_key)

    # The ticket must actually be for us — a ticket for another service
    # sealed under (somehow) the same key is still rejected.
    if not ticket.server.same_entity(service):
        raise KerberosError(
            ErrorCode.RD_AP_MODIFIED,
            f"ticket is for {ticket.server}, this service is {service}",
        )

    # Ticket validity window.
    if ticket.expired(now, skew):
        raise KerberosError(
            ErrorCode.RD_AP_EXP,
            f"ticket expired at {ticket.expires:.0f}, now {now:.0f}",
        )
    if ticket.not_yet_valid(now, skew):
        raise KerberosError(
            ErrorCode.RD_AP_NYV,
            f"ticket not valid until {ticket.timestamp:.0f}, now {now:.0f}",
        )

    auth = unseal_authenticator(request.authenticator, ticket.key)

    # "compares the information in the ticket with that in the
    # authenticator" — same client...
    if not auth.client.same_entity(ticket.client):
        raise KerberosError(
            ErrorCode.RD_AP_PRINCIPAL,
            f"authenticator names {auth.client}, ticket names {ticket.client}",
        )
    # ... same address, which must also be "the IP address from which the
    # request was received".
    packet_addr = IPAddress(packet_address)
    if auth.address != ticket.address or packet_addr.as_int != ticket.address:
        raise KerberosError(
            ErrorCode.RD_AP_BADD,
            f"address mismatch: ticket {ticket.client_address}, "
            f"authenticator {auth.client_address}, packet {packet_addr}",
        )

    # "If the time in the request is too far in the future or the past,
    # the server treats the request as an attempt to replay."
    if abs(now - auth.timestamp) > skew:
        raise KerberosError(
            ErrorCode.RD_AP_TIME,
            f"authenticator time {auth.timestamp:.0f} outside +/-{skew:.0f}s "
            f"of server time {now:.0f}",
        )

    # "a request received with the same ticket and time stamp as one
    # already received can be discarded."
    if replay_cache is not None:
        fresh = replay_cache.check_and_store(
            str(auth.client), auth.address, auth.timestamp, now
        )
        if not fresh:
            raise KerberosError(
                ErrorCode.RD_AP_REPEAT,
                f"authenticator from {auth.client} at {auth.timestamp:.0f} "
                "already seen (replay)",
            )

    return AuthContext(
        client=ticket.client,
        session_key=ticket.key,
        address=IPAddress(ticket.address),
        authenticator_timestamp=auth.timestamp,
        ticket=ticket,
        checksum=auth.checksum,
    )


def krb_mk_rep(context: AuthContext) -> ApReply:
    """Server side of Figure 7: prove knowledge of the session key by
    returning {authenticator timestamp + 1} sealed in it."""
    return ApReply.build(context.authenticator_timestamp, context.session_key)


def krb_rd_rep(reply: ApReply, sent_timestamp: float, session_key: DesKey) -> None:
    """Client side of Figure 7: verify the server's proof.  Raises on a
    masquerading server (which cannot produce the seal)."""
    reply.verify(sent_timestamp, session_key)
