"""The Kerberos protocol core (paper Section 4 and Figure 9).

This package is the paper's primary contribution: the building blocks
(tickets, authenticators), the three authentication phases (initial
ticket, server ticket, presenting credentials), the servers and client
library that run them, and the supporting pieces (replay cache,
credential cache, safe/private messages, cross-realm keys).

Public API tour::

    from repro.core import (
        KerberosServer,      # the AS + TGS (run one per master/slave)
        KerberosClient,      # the workstation library (kinit, tickets)
        Principal,           # name.instance@realm
        Ticket, Authenticator,
        krb_mk_req, krb_rd_req, krb_mk_rep, krb_rd_rep,   # Figures 6-7
        krb_mk_safe, krb_rd_safe, krb_mk_priv, krb_rd_priv,
        SrvTab, ReplayCache, CredentialCache,
        KerberosError, ErrorCode,
    )
"""

from repro.principal import (
    Principal,
    PrincipalError,
    kdbm_principal,
    tgs_principal,
)
from repro.core.errors import ErrorCode, KerberosError, WrongShard
from repro.core.locator import KdcLocator, StaticLocator
from repro.core.ticket import Ticket, seal_ticket, unseal_ticket
from repro.core.authenticator import (
    Authenticator,
    build_authenticator,
    unseal_authenticator,
)
from repro.core.messages import (
    ApReply,
    ApRequest,
    AsRequest,
    ErrorReply,
    KdcReply,
    KdcReplyBody,
    MessageType,
    TgsRequest,
    decode_message,
    encode_message,
    expect_reply,
)
from repro.core.replay import CLOCK_SKEW, ReplayCache
from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.core.applib import (
    AuthContext,
    SrvTab,
    krb_mk_rep,
    krb_mk_req,
    krb_rd_rep,
    krb_rd_req,
)
from repro.core.safe_priv import (
    PrivMessage,
    SafeMessage,
    krb_mk_priv,
    krb_mk_safe,
    krb_rd_priv,
    krb_rd_safe,
)
from repro.core.credcache import Credential, CredentialCache
from repro.core.kdc import KerberosServer
from repro.core.client import KerberosClient
from repro.core.crossrealm import link_realms

__all__ = [
    "ApReply",
    "ApRequest",
    "AsRequest",
    "AuthContext",
    "Authenticator",
    "CLOCK_SKEW",
    "Credential",
    "CredentialCache",
    "ErrorCode",
    "ErrorReply",
    "KdcReply",
    "KdcReplyBody",
    "KdcLocator",
    "KerberosClient",
    "KerberosError",
    "KerberosServer",
    "MessageType",
    "Principal",
    "PrincipalError",
    "ReplayCache",
    "RetryExhausted",
    "RetryPolicy",
    "run_with_failover",
    "SafeMessage",
    "PrivMessage",
    "SrvTab",
    "StaticLocator",
    "TgsRequest",
    "Ticket",
    "WrongShard",
    "build_authenticator",
    "decode_message",
    "encode_message",
    "expect_reply",
    "kdbm_principal",
    "krb_mk_priv",
    "krb_mk_rep",
    "krb_mk_req",
    "krb_mk_safe",
    "krb_rd_priv",
    "krb_rd_rep",
    "krb_rd_req",
    "krb_rd_safe",
    "link_realms",
    "seal_ticket",
    "tgs_principal",
    "unseal_authenticator",
    "unseal_ticket",
]
