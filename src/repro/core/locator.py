"""KDC discovery as one protocol: the :class:`KdcLocator`.

Before this module the tree grew three parallel answers to "which KDC
do I send this to?": the address list baked into the client
constructor, the workstation re-point (``KerberosClient.set_kdcs``)
the supervisor drives after a promotion, and the Hesiod ``_kerberos``
record a workstation can look up at login time.  Each new discovery
mechanism (and sharding adds another) would have multiplied every call
site by one more path.

A :class:`KdcLocator` collapses them: the client holds one locator per
realm and asks it, per request, for a failover-ordered address list.
Implementations:

* :class:`StaticLocator` (here) — a fixed list, current master first;
  what the legacy constructor/``set_kdcs`` shims build.
* :class:`~repro.apps.hesiod.HesiodLocator` — resolves the realm's
  ``_kerberos`` record from a Hesiod server, caching until
  :meth:`~KdcLocator.refresh`.
* :class:`~repro.realm.sharding.ShardedLocator` — routes by principal
  through a consistent-hash ring snapshot, one replica list per shard.

The protocol is deliberately protocol-agnostic (the PKINIT line of
work makes the same point about client-side KDC selection): ``locate``
takes only an opaque routing key — the principal's database key — and
returns addresses, so new exchange types need no new discovery code.

Deprecated entry points shim onto locators for one release and count
their callers in ``api.deprecated_calls_total{api=...}`` via
:func:`count_deprecated`, so a fleet can prove the old paths are dead
before they are removed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.netsim import IPAddress


def count_deprecated(metrics, api: str) -> None:
    """Count one call into a deprecated discovery entry point.

    The counter is the evidence for removal: a release whose
    ``api.deprecated_calls_total`` stays flat has migrated every
    caller.  ``metrics`` may be None (callers without a registry)."""
    if metrics is not None:
        metrics.counter("api.deprecated_calls_total", {"api": api}).inc()


class KdcLocator:
    """Where are the KDCs of one realm, for one request?

    ``locate`` answers with a failover-ordered address list — the
    first entry is tried first, so implementations put the preferred
    KDC (the master, or the owning shard's master) at the head; the
    client rides the whole list through ``run_with_failover``.
    """

    def locate(self, routing_key: Optional[str] = None) -> List[IPAddress]:
        """Addresses to try, in failover order.

        ``routing_key`` is the principal's database key (``name`` or
        ``name.instance``) when the request has one — the AS exchange's
        client, the TGS exchange's authenticated owner.  Non-sharded
        locators ignore it.
        """
        raise NotImplementedError

    def refresh(self) -> None:
        """Re-read the discovery source (a no-op for static lists).

        Called by the client when its cached view proved stale — e.g.
        after a :class:`~repro.core.errors.WrongShard` referral."""

    def apply_referral(self, referral) -> None:
        """Fold a :class:`~repro.core.errors.WrongShard` referral into
        the locator's view, so the *next* request routes correctly
        without waiting for a full refresh.  Default: refresh."""
        self.refresh()


class StaticLocator(KdcLocator):
    """A fixed, explicitly configured KDC list — the /etc/krb.conf of
    the era.  Failover order is the list order: current master first."""

    def __init__(self, addresses: Sequence) -> None:
        if not addresses:
            raise ValueError("at least one KDC address is required")
        self._addresses = [IPAddress(a) for a in addresses]

    def locate(self, routing_key: Optional[str] = None) -> List[IPAddress]:
        return list(self._addresses)

    def set_addresses(self, addresses: Sequence) -> None:
        """Replace the list — the re-point a workstation applies when
        discovery tells it the master moved."""
        if not addresses:
            raise ValueError("at least one KDC address is required")
        self._addresses = [IPAddress(a) for a in addresses]


__all__ = ["KdcLocator", "StaticLocator", "count_deprecated"]
