"""The workstation-side Kerberos client library.

Implements the client's half of every protocol in Figure 9:

* the initial-ticket (AS) exchange of Figure 5 — :meth:`KerberosClient.kinit`;
* the ticket-granting (TGS) exchange of Figure 8 —
  :meth:`KerberosClient.get_credential`;
* building authentication requests for end servers (Figure 6) and
  verifying mutual-authentication replies (Figure 7) —
  :meth:`KerberosClient.mk_req` / :meth:`KerberosClient.rd_rep`;
* cross-realm acquisition (Section 7.2): a local TGT buys a remote TGT,
  which buys tickets from the remote realm's TGS.

Availability (Figure 10): the client knows *several* KDC addresses —
the master and any slaves — and fails over between them, which is how
"if the master machine is down, authentication can still be achieved on
one of the slave machines".

Discovery (PR 9): where those addresses come from is one protocol, the
:class:`~repro.core.locator.KdcLocator`.  The client holds a locator
per realm and asks it, per request, for a failover-ordered list — a
static list, a Hesiod record, or a shard ring routing by principal.  A
sharded realm may answer with a :class:`~repro.core.errors.WrongShard`
referral; the client folds it into the locator and re-sends (bounded
hops), counting follows in ``kdc.referral_follows_total``.  The legacy
constructor address list and :meth:`KerberosClient.set_kdcs` remain as
one-release shims that build :class:`StaticLocator`\\ s and count their
callers in ``api.deprecated_calls_total``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import DesKey, string_to_key
from repro.core.applib import krb_mk_req, krb_rd_rep
from repro.core.credcache import Credential, CredentialCache
from repro.core.errors import (
    ErrorCode,
    KerberosError,
    PreauthRequired,
    WrongShard,
)
from repro.core.locator import KdcLocator, StaticLocator, count_deprecated
from repro.core.messages import (
    ApReply,
    ApRequest,
    AsRequest,
    MessageType,
    PreauthAsRequest,
    TgsRequest,
    build_preauth,
    decode_message,
    encode_message,
    expect_reply,
)
from repro.core.authenticator import build_authenticator
from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.database.schema import DEFAULT_MAX_LIFE
from repro.netsim import Host, IPAddress, NoSuchService, Unreachable
from repro.netsim.ports import KERBEROS_PORT
from repro.obs import LATENCY_BUCKETS
from repro.principal import Principal, tgs_principal

#: Referral follows per exchange before giving up.  One hop corrects a
#: stale ring snapshot; a second absorbs a ring that changed *again*
#: mid-exchange; beyond that something is looping.
MAX_REFERRAL_HOPS = 3


class KerberosClient:
    """A user's Kerberos state on one workstation."""

    def __init__(
        self,
        host: Host,
        realm: str,
        kdc_addresses: Optional[Sequence] = None,
        kdc_directory: Optional[Dict[str, Sequence]] = None,
        default_life: float = DEFAULT_MAX_LIFE,
        port: int = KERBEROS_PORT,
        retries: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        locator: Optional[KdcLocator] = None,
    ) -> None:
        if kdc_addresses is None and locator is None:
            raise ValueError("at least one KDC address is required")
        if retries < 1:
            raise ValueError("retries must be at least 1")
        self.retries = retries
        #: Explicit policy wins; otherwise the legacy shape (``retries``
        #: immediate passes over the KDC list) is rebuilt per realm in
        #: :meth:`_ask_kdc`.
        self.retry_policy = retry_policy
        # Deterministic backoff jitter: seeded from the workstation name
        # (str seeds hash stably), never from ambient entropy.
        self._retry_rng = random.Random(f"retry:{host.name}")
        self.host = host
        self.realm = realm
        self.port = port
        self.default_life = default_life
        # Observability rides on the network the workstation is plugged
        # into; exchange spans nest under whatever span the caller has
        # open, threading one request ID through AS→TGS→AP.
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        self.cache = CredentialCache(metrics=self.metrics)
        # realm -> the locator that answers "which KDCs, for this
        # request?" — the local realm's locator routes every AS/TGS send.
        self._locators: Dict[str, KdcLocator] = {}
        if locator is not None:
            self._locators[realm] = locator
        elif kdc_addresses is not None:
            # Legacy constructor shape (one release): an explicit
            # address list becomes a StaticLocator, and the caller is
            # counted toward removing this path.
            if not kdc_addresses:
                raise ValueError("at least one KDC address is required")
            count_deprecated(self.metrics, "KerberosClient.kdc_addresses")
            self._locators[realm] = StaticLocator(kdc_addresses)
        for other_realm, addrs in (kdc_directory or {}).items():
            count_deprecated(self.metrics, "KerberosClient.kdc_directory")
            self._locators[other_realm] = StaticLocator(addrs)
        self._last_auth_time = float("-inf")

    def _auth_now(self) -> float:
        """The workstation clock as seen by authenticator timestamps.

        A real machine's clock has sub-second resolution, so no two
        authenticators it builds ever share a timestamp; the simulated
        clock can stand still, so sub-second stalls are nudged forward a
        microsecond — otherwise back-to-back requests in the same
        simulated instant would trip the server's replay cache.  A clock
        stepped *backwards* by more than a second (an operator fixing a
        skewed workstation) is honored as-is, exactly as a real machine
        would emit older timestamps again.
        """
        now = self.host.clock.now()
        if now <= self._last_auth_time and self._last_auth_time - now < 1.0:
            now = self._last_auth_time + 1e-6
        self._last_auth_time = now
        return now

    @property
    def principal(self) -> Optional[Principal]:
        return self.cache.owner

    def set_locator(self, realm: str, locator: KdcLocator) -> None:
        """Install the discovery mechanism for ``realm`` — static list,
        Hesiod, or shard ring."""
        self._locators[realm] = locator

    def locator_for(self, realm: str) -> Optional[KdcLocator]:
        return self._locators.get(realm)

    def set_kdcs(self, realm: str, addresses: Sequence) -> None:
        """Deprecated shim (one release): re-point the KDC list for
        ``realm``.  The re-point now flows through locators — an
        in-place :meth:`StaticLocator.set_addresses` when one is
        installed, a fresh static locator otherwise.  Callers are
        counted in ``api.deprecated_calls_total``; migrate to
        :meth:`set_locator` / ``locator.refresh()``."""
        if not addresses:
            raise ValueError(f"need at least one KDC address for {realm}")
        count_deprecated(self.metrics, "KerberosClient.set_kdcs")
        existing = self._locators.get(realm)
        if isinstance(existing, StaticLocator):
            existing.set_addresses(addresses)
        else:
            self._locators[realm] = StaticLocator(addresses)

    def kdcs(self, realm: str) -> List[IPAddress]:
        """The client's current KDC list for ``realm`` (copy; for a
        sharded locator, the default-routed list)."""
        locator = self._locators.get(realm)
        return list(locator.locate(None)) if locator is not None else []

    # -- KDC transport with failover (Figure 10) -----------------------------

    def _ask_kdc(
        self,
        realm: str,
        build_payload,
        op: str = "kdc",
        routing_key: Optional[str] = None,
    ) -> bytes:
        """Send a request to the realm's KDCs: locate, fail over, and
        follow shard referrals.

        ``routing_key`` is the principal database key the request is
        *about* (the AS exchange's client; the TGS exchange's
        authenticated owner) — a sharded locator hashes it onto the
        ring to pick the owning shard's replica list; other locators
        ignore it.

        A :class:`WrongShard` error reply is a *referral*, not a
        failure: the locator folds it in (adopting the authoritative
        shard's addresses, refreshing the ring if the referrer's epoch
        is ahead) and the request is re-sent, up to
        :data:`MAX_REFERRAL_HOPS` times.  Referrals do not trip the
        failover counter — the KDC answered; it just is not the owner.
        """
        locator = self._locators.get(realm)
        if locator is None:
            raise KerberosError(
                ErrorCode.KDC_NO_CROSS_REALM,
                f"no known KDC for realm {realm}",
            )
        addresses = locator.locate(routing_key)
        hops = 0
        while True:
            raw = self._failover_exchange(realm, addresses, build_payload, op)
            referral = self._parse_referral(raw)
            if referral is None:
                return raw
            hops += 1
            self.metrics.counter(
                "kdc.referral_follows_total", {"realm": realm}
            ).inc()
            locator.apply_referral(referral)
            if hops >= MAX_REFERRAL_HOPS:
                raise referral
            # Prefer the referral's explicit address list — it names
            # the authoritative shard even if our snapshot is stale.
            referred = [IPAddress(a) for a in referral.kdcs]
            addresses = referred or locator.locate(routing_key)

    @staticmethod
    def _parse_referral(raw: bytes) -> Optional[WrongShard]:
        """The typed WrongShard carried by an error reply, else None."""
        try:
            mtype, message = decode_message(raw)
        except KerberosError:
            return None  # not even an envelope; let expect_reply complain
        if (
            mtype == MessageType.ERROR
            and message.code == ErrorCode.KDC_WRONG_SHARD
        ):
            return WrongShard(ErrorCode.KDC_WRONG_SHARD, message.text)
        return None

    def _failover_exchange(
        self, realm: str, addresses: List[IPAddress], build_payload, op: str
    ) -> bytes:
        """One pass of UDP-style retransmission and failover over an
        address list (Figure 10).

        ``build_payload`` is a zero-argument callable producing the
        request bytes, called fresh for every attempt: a retransmitted
        TGS request must carry a *new* authenticator, because if only
        the reply was lost the KDC has already recorded the old
        timestamp in its replay cache and would reject a verbatim
        resend.

        The endpoint list is master-first; when the answer finally comes
        from a different KDC than the primary, that is a failover and is
        counted in ``kdc.failovers_total``.
        """
        if not addresses:
            raise KerberosError(
                ErrorCode.KDC_NO_CROSS_REALM,
                f"no known KDC for realm {realm}",
            )
        policy = self.retry_policy
        if policy is None:
            # Legacy shape: `retries` immediate passes over the KDC list.
            policy = RetryPolicy(max_attempts=self.retries * len(addresses))

        def attempt(address) -> bytes:
            raw = self.host.rpc(address, self.port, build_payload())
            # An overload shed is *typed as* Unreachable (KdcOverloaded),
            # so raising it here makes failover try the next KDC exactly
            # as it would for a lost datagram — no special case.
            self._raise_if_overloaded(raw)
            return raw

        try:
            raw, answered_by, _ = run_with_failover(
                policy,
                self.host.clock,
                addresses,
                attempt,
                rng=self._retry_rng,
                metrics=self.metrics,
                op=op,
                # NoSuchService is port-unreachable: the host answers
                # but no KDC listens (e.g. a detached service during
                # maintenance) — as failover-worthy as a dead host.
                retry_on=(Unreachable, NoSuchService),
            )
        except RetryExhausted as exc:
            raise Unreachable(
                f"no KDC for {realm} reachable ({exc.attempts} attempts): "
                f"{exc.last_error}"
            ) from exc
        if answered_by != addresses[0]:
            self.metrics.counter(
                "kdc.failovers_total", {"realm": realm}
            ).inc()
        return raw

    @staticmethod
    def _raise_if_overloaded(raw: bytes) -> None:
        """Raise the typed KdcOverloaded for an overload error reply."""
        try:
            mtype, message = decode_message(raw)
        except KerberosError:
            return  # not even an envelope; let expect_reply complain
        if (
            mtype == MessageType.ERROR
            and message.code == ErrorCode.KDC_OVERLOADED
        ):
            message.raise_()

    # -- Figure 5: the initial ticket --------------------------------------------

    def kinit(
        self,
        username: str,
        password: str,
        life: Optional[float] = None,
        instance: str = "",
    ) -> Credential:
        """Log in: obtain a ticket-granting ticket with the user's password.

        The request carries only "the user's name and the name of ...
        the ticket-granting service"; the password never leaves the
        workstation.  It is used locally to decrypt the reply, then both
        it and the derived key are dropped (Section 4.2).
        """
        client = Principal(username, instance, self.realm)
        cred = self.as_exchange(
            client, password, tgs_principal(self.realm), life=life
        )
        self.cache.owner = client
        return cred

    def as_exchange(
        self,
        client: Principal,
        password: str,
        service: Principal,
        life: Optional[float] = None,
    ) -> Credential:
        """The raw AS exchange, for the TGS (kinit) or for the KDBM
        (kpasswd/kadmin, which 'must use the authentication service
        itself', Section 5.1).  The resulting credential is cached."""
        with self.tracer.span(
            "client.as_exchange",
            client=str(client),
            service=str(service),
            host=self.host.name,
        ) as span:
            cred = self._as_exchange(client, password, service, life)
        self.metrics.histogram(
            "client.exchange_seconds", LATENCY_BUCKETS, {"type": "as"}
        ).observe(span.duration)
        return cred

    def _as_exchange(
        self,
        client: Principal,
        password: str,
        service: Principal,
        life: Optional[float],
    ) -> Credential:
        now = self.host.clock.now()
        request = AsRequest(
            client=client,
            service=service,
            requested_life=life if life is not None else self.default_life,
            timestamp=now,
        )
        wire = encode_message(MessageType.AS_REQ, request)
        raw = self._ask_kdc(
            self.realm, lambda: wire, op="as", routing_key=client.db_key()
        )
        try:
            reply = expect_reply(raw, MessageType.AS_REP)
        except PreauthRequired:
            # Preauthentication negotiation (extension): retry with the
            # request timestamp sealed in the password-derived key.
            preauth_request = PreauthAsRequest(
                client=request.client,
                service=request.service,
                requested_life=request.requested_life,
                timestamp=request.timestamp,
                preauth=build_preauth(string_to_key(password), now),
            )
            preauth_wire = encode_message(
                MessageType.PREAUTH_AS_REQ, preauth_request
            )
            raw = self._ask_kdc(
                self.realm,
                lambda: preauth_wire,
                op="as",
                routing_key=client.db_key(),
            )
            reply = expect_reply(raw, MessageType.AS_REP)

        # "The password is converted to a DES key and used to decrypt the
        # response."  A wrong password surfaces here as INTK_BADPW —
        # never as a message to the server.
        user_key = string_to_key(password)
        body = reply.open(user_key)
        del user_key, password  # "the user's password and DES key are erased"

        if not body.server.same_entity(
            service.with_realm(service.realm or self.realm)
        ):
            raise KerberosError(
                ErrorCode.INTK_PROT,
                f"reply is for {body.server}, requested {service}",
            )
        if body.request_timestamp != now:
            raise KerberosError(
                ErrorCode.INTK_PROT, "reply does not echo our request time"
            )
        cred = Credential(
            service=body.server,
            ticket=body.ticket,
            session_key=DesKey.from_bytes(body.session_key, allow_weak=True),
            issue_time=body.issue_time,
            life=body.life,
            kvno=body.kvno,
        )
        self.cache.store(cred)
        return cred

    # -- Figure 8: server tickets from the TGS ---------------------------------------

    def get_credential(
        self, service: Principal, life: Optional[float] = None
    ) -> Credential:
        """Return a usable credential for ``service``, running TGS
        exchanges as needed (and going cross-realm when the service's
        realm is not ours, Section 7.2).  Cached tickets are reused —
        "once the ticket has been issued, it may be used multiple times"
        — until they expire."""
        target_realm = service.realm or self.realm
        now = self.host.clock.now()

        cached = self.cache.get(service, now=now)
        if cached is not None:
            return cached

        if target_realm == self.realm:
            tgt = self._require_tgt(now)
            return self._tgs_exchange(self.realm, tgt, service, life)

        # Cross-realm: first a TGT for the remote realm from our own TGS
        # ("a user ... can obtain credentials issued by another realm, on
        # the strength of the authentication provided by the local realm").
        remote_tgt = self.cache.remote_tgt(self.realm, target_realm, now=now)
        if remote_tgt is None:
            local_tgt = self._require_tgt(now)
            remote_tgt = self._tgs_exchange(
                self.realm,
                local_tgt,
                tgs_principal(self.realm, target_realm),
                life,
            )
        # Then the remote TGS issues the service ticket; it will
        # recognize the TGT's realm and use the inter-realm key.
        return self._tgs_exchange(target_realm, remote_tgt, service, life)

    def _require_tgt(self, now: float) -> Credential:
        tgt = self.cache.tgt(self.realm, now=now)
        if tgt is None:
            raise KerberosError(
                ErrorCode.INTK_PROT,
                "no valid ticket-granting ticket: run kinit "
                "(the TGT may have expired, Section 6.1)",
            )
        return tgt

    def _tgs_exchange(
        self,
        kdc_realm: str,
        tgt: Credential,
        service: Principal,
        life: Optional[float],
    ) -> Credential:
        """One Figure-8 exchange against the TGS of ``kdc_realm``."""
        with self.tracer.span(
            "client.tgs_exchange",
            service=str(service),
            kdc_realm=kdc_realm,
            host=self.host.name,
        ) as span:
            cred = self._tgs_exchange_inner(kdc_realm, tgt, service, life)
        self.metrics.histogram(
            "client.exchange_seconds", LATENCY_BUCKETS, {"type": "tgs"}
        ).observe(span.duration)
        return cred

    def _tgs_exchange_inner(
        self,
        kdc_realm: str,
        tgt: Credential,
        service: Principal,
        life: Optional[float],
    ) -> Credential:
        def build_request() -> bytes:
            # Fresh timestamp and authenticator per attempt (see _ask_kdc).
            now = self._auth_now()
            authenticator = build_authenticator(
                client=self.cache.owner,
                address=self.host.address,
                now=now,
                session_key=tgt.session_key,
            )
            # The TGT was issued by our own realm even when presented to a
            # remote TGS — that cleartext field is how the remote side
            # knows to use the inter-realm key.
            request = TgsRequest(
                service=service,
                requested_life=life if life is not None else self.default_life,
                timestamp=now,
                tgt_realm=self.realm,
                tgt=tgt.ticket,
                authenticator=authenticator,
            )
            return encode_message(MessageType.TGS_REQ, request)

        # TGS requests are servable by any shard (krbtgt and service
        # records replicate realm-wide), so the routing key is pure load
        # spreading: the authenticated owner's name.
        owner = self.cache.owner
        raw = self._ask_kdc(
            kdc_realm,
            build_request,
            op="tgs",
            routing_key=owner.db_key() if owner is not None else None,
        )
        reply = expect_reply(raw, MessageType.TGS_REP)
        # "the reply is encrypted in the session key that was part of the
        # ticket-granting ticket" — the password plays no part.
        body = reply.open(tgt.session_key)
        cred = Credential(
            service=service,
            ticket=body.ticket,
            session_key=DesKey.from_bytes(body.session_key, allow_weak=True),
            issue_time=body.issue_time,
            life=body.life,
            kvno=body.kvno,
        )
        self.cache.store(cred)
        return cred

    # -- Figures 6 and 7: talking to end servers -----------------------------------------

    def mk_req(
        self,
        service: Principal,
        mutual: bool = False,
        checksum: int = 0,
    ) -> Tuple[ApRequest, Credential, float]:
        """Build the authentication request for a service, fetching a
        ticket first if needed.  Returns (request, credential, the
        authenticator timestamp — needed to verify a mutual reply)."""
        cred = self.get_credential(service)
        with self.tracer.span(
            "client.ap_request", service=str(service), host=self.host.name
        ):
            now = self._auth_now()
            request = krb_mk_req(
                ticket_blob=cred.ticket,
                session_key=cred.session_key,
                client=self.cache.owner,
                client_address=self.host.address,
                now=now,
                mutual=mutual,
                kvno=cred.kvno,
                checksum=checksum,
            )
        return request, cred, now

    def rd_rep(
        self, reply: ApReply, sent_timestamp: float, cred: Credential
    ) -> None:
        """Verify a Figure-7 mutual-authentication reply."""
        krb_rd_rep(reply, sent_timestamp, cred.session_key)

    # -- Section 6.1 user operations ----------------------------------------------------

    def klist(self) -> List[Credential]:
        return self.cache.list()

    def kdestroy(self) -> int:
        return self.cache.destroy()
