"""Replay detection (paper Section 4.3).

*"The server is also allowed to keep track of all past requests with
time stamps that are still valid.  In order to further foil replay
attacks, a request received with the same ticket and time stamp as one
already received can be discarded."*

The cache remembers (client, address, timestamp) triples for as long as
their timestamps remain inside the acceptance window; older entries are
purged as time advances, bounding memory at (window x request rate).

When a :class:`repro.obs.MetricsRegistry` is supplied, the cache records
``replay.checks_total{result="fresh"|"replay"}`` and
``replay.evictions_total`` — the signals replay-attack analyses hinge
on (Dua et al., arXiv:1304.3550).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Mapping, Optional, Set, Tuple

from repro.netsim.clock import MINUTE

#: "It is assumed that clocks are synchronized to within several
#: minutes" — we take "several" to be five.
CLOCK_SKEW = 5 * MINUTE

_Entry = Tuple[str, int, float]


class ReplayCache:
    """Remembers recently seen authenticators for one server."""

    def __init__(
        self,
        window: float = CLOCK_SKEW,
        metrics=None,
        labels: Optional[Mapping[str, object]] = None,
        audit=None,
        host: str = "",
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._seen: Set[_Entry] = set()
        self._order: Deque[Tuple[float, _Entry]] = deque()
        #: The security-event log a caught replay is reported to (the
        #: Section 4.3 "can be discarded" moment is an audit event).
        self._audit = audit
        self._host = host
        if metrics is not None:
            base = dict(labels or {})
            self._fresh = metrics.counter(
                "replay.checks_total", {**base, "result": "fresh"}
            )
            self._replayed = metrics.counter(
                "replay.checks_total", {**base, "result": "replay"}
            )
            self._evictions = metrics.counter(
                "replay.evictions_total", base
            )
            self._size = metrics.gauge("replay.entries", base)
        else:
            self._fresh = self._replayed = self._evictions = self._size = None

    def bind_audit(self, audit, host: str) -> None:
        """Late-wire the audit log (caches built before their host is
        known — e.g. in a Service ``__init__`` — bind at attach time)."""
        self._audit = audit
        self._host = host

    def seen_before(self, client: str, address: int, timestamp: float) -> bool:
        """Has this exact (client, addr, timestamp) already been presented?"""
        return (client, address, timestamp) in self._seen

    def remember(self, client: str, address: int, timestamp: float, now: float) -> None:
        """Record a fresh authenticator (idempotent for direct callers)."""
        entry = (client, address, timestamp)
        if entry not in self._seen:
            self._store(entry, timestamp, now)

    def _store(self, entry: _Entry, timestamp: float, now: float) -> None:
        """Insert an entry the caller has already proven absent.

        Purging is amortized: entries are only swept when the *oldest*
        one has actually aged out of the window, so the steady-state
        insert is a set add + deque append rather than a scan.
        """
        if self._order and self._order[0][0] < now - self.window:
            self.purge(now)
        self._seen.add(entry)
        self._order.append((timestamp, entry))

    def check_and_store(
        self, client: str, address: int, timestamp: float, now: float
    ) -> bool:
        """Combined operation: True if fresh (and now recorded), False if
        this is a replay.  This is the KDC/server hot path: one set
        lookup decides, and the store skips the redundant re-check."""
        entry = (client, address, timestamp)
        if entry in self._seen:
            if self._replayed is not None:
                self._replayed.inc()
            if self._audit is not None:
                self._audit.emit(
                    "replay_detected",
                    host=self._host,
                    principal=client,
                    detail=f"reused authenticator ts={timestamp:.3f}",
                )
            return False
        self._store(entry, timestamp, now)
        if self._fresh is not None:
            self._fresh.inc()
            self._size.set(len(self._seen))
        return True

    def purge(self, now: float) -> None:
        """Drop entries whose timestamps have fallen out of the window."""
        cutoff = now - self.window
        evicted = 0
        while self._order and self._order[0][0] < cutoff:
            _, entry = self._order.popleft()
            self._seen.discard(entry)
            evicted += 1
        if evicted and self._evictions is not None:
            self._evictions.inc(evicted)
            self._size.set(len(self._seen))

    def __len__(self) -> int:
        return len(self._seen)
