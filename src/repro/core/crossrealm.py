"""Cross-realm authentication setup (paper Section 7.2).

*"In order to perform cross-realm authentication, it is necessary that
the administrators of each pair of realms select a key to be shared
between their realms."*

The shared key is registered in both databases, under two different
names to keep the two roles distinct:

* in the **issuing** realm (where the user authenticates first), as the
  remote realm's TGS principal — ``krbtgt.<remote>@<local>`` — so the
  local TGS can *seal* TGTs the remote realm will accept;
* in the **accepting** realm, as ``xrealm.<issuer>@<local>`` — the key
  its TGS uses to *unseal* TGTs issued by that foreign realm.

:func:`link_realms` installs both directions for a pair of realms.
Because the entries are ordinary database records, they propagate to
slaves with everything else (Figure 13).
"""

from __future__ import annotations

from repro.crypto import DesKey, KeyGenerator
from repro.core.kdc import XREALM_NAME
from repro.database.db import KerberosDatabase
from repro.principal import Principal, tgs_principal


def register_issuing_key(
    db: KerberosDatabase, remote_realm: str, key: DesKey, now: float = 0.0
) -> None:
    """Let ``db``'s realm issue TGTs for ``remote_realm``."""
    db.add_principal(
        tgs_principal(db.realm, remote_realm),
        key=key,
        now=now,
        mod_by="cross-realm",
    )


def register_accepting_key(
    db: KerberosDatabase, issuer_realm: str, key: DesKey, now: float = 0.0
) -> None:
    """Let ``db``'s realm accept TGTs issued by ``issuer_realm``."""
    db.add_principal(
        Principal(XREALM_NAME, issuer_realm, db.realm),
        key=key,
        now=now,
        mod_by="cross-realm",
    )


def link_realms(
    db_a: KerberosDatabase,
    db_b: KerberosDatabase,
    keygen: KeyGenerator,
    now: float = 0.0,
) -> DesKey:
    """Full bidirectional pairing of two realms with one shared key, as
    two administrators agreeing on a key would produce.  Returns the key
    (for tests that need to demonstrate what its compromise allows)."""
    key = keygen.session_key()
    register_issuing_key(db_a, db_b.realm, key, now=now)
    register_accepting_key(db_b, db_a.realm, key, now=now)
    register_issuing_key(db_b, db_a.realm, key, now=now)
    register_accepting_key(db_a, db_b.realm, key, now=now)
    return key
