"""Safe and private messages (paper Section 2.1).

*"Kerberos provides three distinct levels of protection"*:

1. authenticity established only at connection setup — that is plain
   :func:`repro.core.applib.krb_rd_req`, nothing more needed;
2. **safe messages** — "authentication of each message, but do not care
   whether the content of the message is disclosed": plaintext plus a
   keyed checksum, sender address, and timestamp;
3. **private messages** — "each message is not only authenticated, but
   also encrypted.  Private messages are used, for example, by the
   Kerberos server itself for sending passwords over the network."

The function names follow the library the paper describes:
``krb_mk_safe``/``krb_rd_safe`` and ``krb_mk_priv``/``krb_rd_priv``
(Section 6.2).
"""

from __future__ import annotations

from repro.crypto import DesKey, IntegrityError, quad_cksum, seal, unseal
from repro.core.errors import ErrorCode, KerberosError
from repro.core.replay import CLOCK_SKEW
from repro.encode import DecodeError, WireStruct, field
from repro.netsim import IPAddress


class SafeMessage(WireStruct):
    """Authenticated-but-cleartext application data."""

    FIELDS = (
        field("data", "bytes"),
        field("sender", "u32"),       # sender's network address
        field("timestamp", "f64"),
        field("checksum", "u32"),     # quad_cksum seeded by the session key
    )


class PrivMessage(WireStruct):
    """Encrypted application data (the sealed payload carries the
    plaintext, sender, and timestamp together)."""

    FIELDS = (field("sealed", "bytes"),)


class _PrivBody(WireStruct):
    FIELDS = (
        field("data", "bytes"),
        field("sender", "u32"),
        field("timestamp", "f64"),
    )


def krb_mk_safe(
    data: bytes, session_key: DesKey, sender: IPAddress, now: float
) -> SafeMessage:
    """Build a safe message: readable by anyone, forgeable by no one
    without the session key."""
    body = SafeMessage(
        data=bytes(data),
        sender=IPAddress(sender).as_int,
        timestamp=now,
        checksum=0,
    )
    checksum = quad_cksum(body.to_bytes(), session_key.key_bytes)
    return body.replace(checksum=checksum)


def krb_rd_safe(
    message: SafeMessage,
    session_key: DesKey,
    expected_sender: IPAddress,
    now: float,
    skew: float = CLOCK_SKEW,
) -> bytes:
    """Verify and return the data of a safe message."""
    expected = quad_cksum(
        message.replace(checksum=0).to_bytes(), session_key.key_bytes
    )
    if message.checksum != expected:
        raise KerberosError(
            ErrorCode.RD_AP_MODIFIED, "safe message checksum mismatch"
        )
    if message.sender != IPAddress(expected_sender).as_int:
        raise KerberosError(
            ErrorCode.RD_AP_BADD,
            f"safe message claims sender {IPAddress(message.sender)}, "
            f"expected {IPAddress(expected_sender)}",
        )
    if abs(now - message.timestamp) > skew:
        raise KerberosError(
            ErrorCode.RD_AP_TIME,
            f"safe message time {message.timestamp:.0f} outside window",
        )
    return message.data


def krb_mk_priv(
    data: bytes, session_key: DesKey, sender: IPAddress, now: float
) -> PrivMessage:
    """Build a private message: encrypted and authenticated."""
    body = _PrivBody(
        data=bytes(data), sender=IPAddress(sender).as_int, timestamp=now
    )
    return PrivMessage(sealed=seal(session_key, body.to_bytes()))


def krb_rd_priv(
    message: PrivMessage,
    session_key: DesKey,
    expected_sender: IPAddress,
    now: float,
    skew: float = CLOCK_SKEW,
) -> bytes:
    """Decrypt, verify, and return the data of a private message."""
    try:
        body = _PrivBody.from_bytes(unseal(session_key, message.sealed))
    except (IntegrityError, DecodeError) as exc:
        raise KerberosError(
            ErrorCode.RD_AP_MODIFIED,
            f"private message failed to decrypt: {exc}",
        ) from exc
    if body.sender != IPAddress(expected_sender).as_int:
        raise KerberosError(
            ErrorCode.RD_AP_BADD,
            f"private message claims sender {IPAddress(body.sender)}, "
            f"expected {IPAddress(expected_sender)}",
        )
    if abs(now - body.timestamp) > skew:
        raise KerberosError(
            ErrorCode.RD_AP_TIME,
            f"private message time {body.timestamp:.0f} outside window",
        )
    return body.data
