"""Kerberos authenticators (paper Section 4.1, Figure 4).

*"Unlike the ticket, the authenticator can only be used once.  A new one
must be generated each time a client wants to use a service.  This does
not present a problem because the client is able to build the
authenticator itself."*

Figure 4::

    {c, addr, timestamp} K_s,c

The authenticator is sealed in the *session key* carried inside the
ticket, so a thief who copies a ticket off the wire cannot build a fresh
authenticator for it — proving possession of the session key is what
ties the presenter to the ticket's rightful owner.

The optional ``checksum`` field carries the application-data checksum
that ``krb_mk_req`` accepts ("and possibly a checksum of the data to be
sent", Section 6.2); zero when unused.
"""

from __future__ import annotations

from repro.crypto import DesKey, IntegrityError, seal, unseal
from repro.core.errors import ErrorCode, KerberosError
from repro.encode import DecodeError, WireStruct, field
from repro.netsim import IPAddress
from repro.principal import Principal


class Authenticator(WireStruct):
    """Plaintext content of an authenticator — Figure 4 plus the
    Section 6.2 data checksum."""

    FIELDS = (
        field("client", Principal),   # c
        field("address", "u32"),      # addr (the workstation's IP address)
        field("timestamp", "f64"),    # the current workstation time
        field("checksum", "u32"),     # krb_mk_req's optional data checksum
    )

    @property
    def client_address(self) -> IPAddress:
        return IPAddress(self.address)

    def __repr__(self) -> str:
        return (
            f"Authenticator(client={self.client}, "
            f"addr={self.client_address}, t={self.timestamp})"
        )


def build_authenticator(
    client: Principal,
    address: IPAddress,
    now: float,
    session_key: DesKey,
    checksum: int = 0,
) -> bytes:
    """Create and seal a fresh authenticator ({c, addr, timestamp}K_s,c)."""
    auth = Authenticator(
        client=client,
        address=IPAddress(address).as_int,
        timestamp=now,
        checksum=checksum,
    )
    return seal(session_key, auth.to_bytes())


def unseal_authenticator(blob: bytes, session_key: DesKey) -> Authenticator:
    """Decrypt an authenticator with the session key from the ticket."""
    try:
        return Authenticator.from_bytes(unseal(session_key, blob))
    except (IntegrityError, DecodeError) as exc:
        raise KerberosError(
            ErrorCode.RD_AP_MODIFIED,
            f"authenticator failed to decrypt: {exc}",
        ) from exc
