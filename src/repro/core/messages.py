"""Wire messages of the Kerberos protocols (paper Section 4, Figure 9).

Every exchange in Figure 9 maps to a pair of messages here:

=================  =========================================  ==========
Exchange           Request                                    Reply
=================  =========================================  ==========
Fig. 5 (initial)   :class:`AsRequest`                         :class:`KdcReply`
Fig. 8 (TGS)       :class:`TgsRequest`                        :class:`KdcReply`
Fig. 6/7 (AP)      :class:`ApRequest`                         :class:`ApReply`
errors             —                                          :class:`ErrorReply`
=================  =========================================  ==========

Messages travel inside a one-byte-typed envelope so a server can
dispatch without trial decoding.  Only :class:`KdcReply`'s *body* and the
tickets/authenticators inside requests are encrypted; the envelope and
request fields are cleartext, exactly as in the original protocol (an
eavesdropper sees who is asking for which service — the paper protects
keys and identities' *proofs*, not traffic metadata).
"""

from __future__ import annotations

import enum
from typing import Tuple, Type

from repro.crypto import DesKey, IntegrityError, seal, unseal
from repro.core.errors import ErrorCode, KerberosError, error_for_code
from repro.encode import DecodeError, Decoder, Encoder, WireStruct, field
from repro.principal import Principal


class MessageType(enum.IntEnum):
    AS_REQ = 1
    AS_REP = 2
    TGS_REQ = 3
    TGS_REP = 4
    AP_REQ = 5
    AP_REP = 6
    ERROR = 7
    SAFE = 8
    PRIV = 9
    # Extension (post-1988): AS request carrying preauthentication.
    PREAUTH_AS_REQ = 10


class AsRequest(WireStruct):
    """Figure 5's first message: *"a request is sent to the authentication
    server containing the user's name and the name of a special service
    known as the ticket-granting service."*

    Sent in the clear — it contains no secrets; the reply is what is
    protected (by the user's password-derived key).
    """

    FIELDS = (
        field("client", Principal),
        field("service", Principal),     # usually the TGS; the KDBM for kadmin
        field("requested_life", "f64"),
        field("timestamp", "f64"),       # client's current time, echoed back
    )


class PreauthAsRequest(WireStruct):
    """Extension (post-1988): an AS request that *proves* knowledge of
    the client's key up front, by enclosing the request timestamp sealed
    in that key.

    Motivation: a plain AS request is answerable for *any* principal, so
    an attacker can actively solicit material for offline password
    guessing (see ``repro.threat.eavesdropper``).  With preauthentication
    required, the KDC replies only to requesters who already know the
    key.  (Passive capture of a legitimate user's exchange still enables
    offline guessing — preauth closes the active probe, not the wiretap.)
    """

    FIELDS = (
        field("client", Principal),
        field("service", Principal),
        field("requested_life", "f64"),
        field("timestamp", "f64"),
        field("preauth", "bytes"),   # seal(client_key, f64 timestamp bytes)
    )

    def as_plain(self) -> "AsRequest":
        return AsRequest(
            client=self.client,
            service=self.service,
            requested_life=self.requested_life,
            timestamp=self.timestamp,
        )


def build_preauth(client_key: DesKey, timestamp: float) -> bytes:
    """The preauthentication blob: the request time, sealed in the
    client's key."""
    enc = Encoder()
    enc.f64(timestamp)
    return seal(client_key, enc.getvalue())


def verify_preauth(blob: bytes, client_key: DesKey, timestamp: float) -> bool:
    """KDC side: does the blob open under the client's key and carry a
    fresh timestamp matching the request?"""
    try:
        dec = Decoder(unseal(client_key, blob))
        sealed_time = dec.f64()
        dec.expect_eof()
    except (IntegrityError, DecodeError):
        return False
    return sealed_time == timestamp


class KdcReplyBody(WireStruct):
    """The encrypted payload of an AS or TGS reply: *"the ticket, along
    with a copy of the random session key and some additional
    information"* (Section 4.2)."""

    FIELDS = (
        field("session_key", "bytes"),
        field("server", Principal),      # which service the ticket is for
        field("issue_time", "f64"),      # KDC's clock at issue
        field("life", "f64"),            # granted lifetime
        field("kvno", "u32"),            # key version of the sealing key
        field("request_timestamp", "f64"),  # echo of the request's timestamp
        field("ticket", "bytes"),        # sealed, opaque to the client
    )


class KdcReply(WireStruct):
    """AS reply (sealed in the client's private key) or TGS reply (sealed
    in the TGT's session key — "this way, there is no need for the user to
    enter her/his password again", Section 4.4)."""

    FIELDS = (
        field("client", Principal),
        field("sealed_body", "bytes"),
    )

    @classmethod
    def build(cls, client: Principal, body: KdcReplyBody, key: DesKey) -> "KdcReply":
        return cls(client=client, sealed_body=seal(key, body.to_bytes()))

    def open(self, key: DesKey) -> KdcReplyBody:
        """Decrypt the reply body.  For an AS reply, failure here is the
        paper's wrong-password experience: the reply simply will not
        decrypt."""
        try:
            return KdcReplyBody.from_bytes(unseal(key, self.sealed_body))
        except (IntegrityError, DecodeError) as exc:
            raise error_for_code(
                ErrorCode.INTK_BADPW,
                f"reply would not decrypt (wrong key/password?): {exc}",
            ) from exc


class TgsRequest(WireStruct):
    """Figure 8: *"The request contains the name of the server for which a
    ticket is requested, along with the ticket-granting ticket and an
    authenticator."*

    ``tgt_realm`` names the realm whose TGS issued the enclosed TGT, in
    the clear, so a KDC receiving a cross-realm request can "recognize
    that the request is not from its own realm" and select "the
    previously exchanged key" (Section 7.2).
    """

    FIELDS = (
        field("service", Principal),
        field("requested_life", "f64"),
        field("timestamp", "f64"),
        field("tgt_realm", "string"),
        field("tgt", "bytes"),
        field("authenticator", "bytes"),
    )


class ApRequest(WireStruct):
    """Figure 6: the client "sends the authenticator along with the ticket
    to the server".  ``mutual`` asks the server to prove itself back
    (Figure 7); ``kvno`` lets the server pick the right key from its
    srvtab after a key change."""

    FIELDS = (
        field("ticket", "bytes"),
        field("authenticator", "bytes"),
        field("mutual", "bool"),
        field("kvno", "u32"),
    )


class ApReplyBody(WireStruct):
    """Figure 7's proof: *"the server adds one to the time stamp the
    client sent in the authenticator, encrypts the result in the session
    key, and sends the result back to the client."*"""

    FIELDS = (field("timestamp_plus_one", "f64"),)


class ApReply(WireStruct):
    FIELDS = (field("sealed_body", "bytes"),)

    @classmethod
    def build(cls, authenticator_timestamp: float, session_key: DesKey) -> "ApReply":
        body = ApReplyBody(timestamp_plus_one=authenticator_timestamp + 1.0)
        return cls(sealed_body=seal(session_key, body.to_bytes()))

    def verify(self, expected_timestamp: float, session_key: DesKey) -> None:
        """Client side of mutual authentication: only the genuine server
        could have sealed ts+1 in the session key."""
        try:
            body = ApReplyBody.from_bytes(unseal(session_key, self.sealed_body))
        except (IntegrityError, DecodeError) as exc:
            raise error_for_code(
                ErrorCode.RD_AP_MODIFIED,
                f"mutual-auth reply failed to decrypt: {exc}",
            ) from exc
        if body.timestamp_plus_one != expected_timestamp + 1.0:
            raise error_for_code(
                ErrorCode.RD_AP_MODIFIED,
                "mutual-auth reply has wrong timestamp (masquerading server?)",
            )


class ErrorReply(WireStruct):
    """A failure report from any server."""

    FIELDS = (field("code", "u32"), field("text", "string"))

    def raise_(self) -> None:
        """Raise the *typed* exception for the carried code — the single
        code↔exception mapping lives in :func:`error_for_code`."""
        raise error_for_code(self.code, self.text)

    @classmethod
    def from_error(cls, err: KerberosError) -> "ErrorReply":
        return cls(code=int(err.code), text=err.message)


_TYPE_TO_CLASS: dict = {
    MessageType.AS_REQ: AsRequest,
    MessageType.PREAUTH_AS_REQ: PreauthAsRequest,
    MessageType.AS_REP: KdcReply,
    MessageType.TGS_REQ: TgsRequest,
    MessageType.TGS_REP: KdcReply,
    MessageType.AP_REQ: ApRequest,
    MessageType.AP_REP: ApReply,
    MessageType.ERROR: ErrorReply,
}


def encode_message(mtype: MessageType, message: WireStruct) -> bytes:
    """Wrap a message in the typed envelope."""
    expected = _TYPE_TO_CLASS.get(MessageType(mtype))
    if expected is not None and type(message) is not expected:
        raise TypeError(
            f"{MessageType(mtype).name} carries {expected.__name__}, "
            f"got {type(message).__name__}"
        )
    enc = Encoder()
    enc.u8(int(mtype))
    message.encode_into(enc)
    return enc.getvalue()


def decode_message(data: bytes) -> Tuple[MessageType, WireStruct]:
    """Parse an envelope; raises :class:`KerberosError` (KDC_GEN_ERR) on
    anything malformed, which servers convert to an error reply."""
    try:
        dec = Decoder(data)
        mtype = MessageType(dec.u8())
        cls: Type[WireStruct] = _TYPE_TO_CLASS[mtype]
        message = cls.decode_from(dec)
        dec.expect_eof()
        return mtype, message
    except (DecodeError, ValueError, KeyError) as exc:
        raise error_for_code(
            ErrorCode.KDC_GEN_ERR, f"undecodable message: {exc}"
        ) from exc


def expect_reply(data: bytes, wanted: MessageType) -> WireStruct:
    """Client-side helper: parse a reply, raising the error it carries if
    it is an :class:`ErrorReply`, and checking the type otherwise."""
    mtype, message = decode_message(data)
    if mtype == MessageType.ERROR:
        message.raise_()
    if mtype != wanted:
        raise error_for_code(
            ErrorCode.INTK_PROT,
            f"expected {wanted.name}, got {mtype.name}",
        )
    return message
