"""Human-readable protocol traces (a debugging/teaching tool).

Attach a :class:`ProtocolTracer` to a network and get an annotated,
tcpdump-style line for every datagram — with Kerberos messages decoded
to their type and cleartext fields (and only those: sealed payloads stay
sealed, like they would for any observer).

    tracer = ProtocolTracer(net)
    ... run protocol ...
    print(tracer.format())

Each datagram is tagged with the trace ID it *carries* — the propagated
:class:`repro.obs.TraceContext` stamped on it by the sender — so trace
lines correlate with the structured span tree (``rid=req-000001`` on the
line matches ``Span.request_id``; trace IDs and request IDs are one
scheme).  Datagrams sent outside any span carry no context and land in
the orphan section.  :func:`correlated_report` renders both views
merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import KerberosError
from repro.core.messages import (
    ApRequest,
    AsRequest,
    ErrorReply,
    KdcReply,
    MessageType,
    PreauthAsRequest,
    TgsRequest,
    decode_message,
)
from repro.netsim.network import Datagram, EPHEMERAL_PORT, Network
from repro.netsim.ports import KERBEROS_PORT, port_name
from repro.obs import format_span_tree


def describe_payload(
    payload: bytes, dst_port: int, src_port: Optional[int] = None
) -> str:
    """Best-effort one-line description of a datagram's contents.

    Kerberos decoding is attempted when *either* end of the datagram is
    the Kerberos port — KDC replies travel back to the client's
    ephemeral port, so the destination alone does not identify them.
    When the source port is unknown (older callers), any datagram headed
    to an ephemeral port is still tried, as before.
    """
    kerberos_ish = KERBEROS_PORT in (dst_port, src_port) or (
        src_port is None and dst_port == EPHEMERAL_PORT
    )
    if not kerberos_ish:
        return f"[{len(payload)} bytes]"
    try:
        mtype, message = decode_message(payload)
    except KerberosError:
        return f"[{len(payload)} bytes]"
    if isinstance(message, AsRequest):
        return (f"AS-REQ  client={message.client} "
                f"service={message.service} life={message.requested_life:.0f}s")
    if isinstance(message, PreauthAsRequest):
        return (f"AS-REQ* client={message.client} "
                f"service={message.service} "
                f"preauth=[{len(message.preauth)}B sealed]")
    if isinstance(message, TgsRequest):
        return (f"TGS-REQ service={message.service} "
                f"tgt_realm={message.tgt_realm} "
                f"tgt=[{len(message.tgt)}B sealed] "
                f"authenticator=[{len(message.authenticator)}B sealed]")
    if isinstance(message, KdcReply):
        kind = "AS-REP " if mtype == MessageType.AS_REP else "TGS-REP"
        return (f"{kind} client={message.client} "
                f"body=[{len(message.sealed_body)}B sealed]")
    if isinstance(message, ApRequest):
        return (f"AP-REQ  ticket=[{len(message.ticket)}B sealed] "
                f"mutual={message.mutual} kvno={message.kvno}")
    if isinstance(message, ErrorReply):
        return f"ERROR   code={message.code} {message.text!r}"
    return f"{mtype.name} [{len(payload)} bytes]"


@dataclass(frozen=True)
class TraceRecord:
    """One observed datagram, structured for correlation."""

    time: float
    src: str
    src_port: int
    dst: str
    dst_port: int
    description: str
    request_id: Optional[str]

    def format(self) -> str:
        rid = f"  rid={self.request_id}" if self.request_id else ""
        return (
            f"{self.time:>10.3f}  {self.src:>15} -> "
            f"{self.dst:<15} {port_name(self.dst_port):<9} "
            f"{self.description}{rid}"
        )


class ProtocolTracer:
    """Records and pretty-prints every datagram on a network."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.records: List[TraceRecord] = []
        self._tap = self._on_datagram
        net.add_tap(self._tap)

    def _on_datagram(self, datagram: Datagram) -> None:
        # Correlation comes from the datagram itself: the propagated
        # trace context it carries, not whatever span happens to be open
        # on the tap's stack when it crosses the wire.
        trace = datagram.trace
        self.records.append(
            TraceRecord(
                time=self.net.clock.now(),
                src=str(datagram.src),
                src_port=datagram.src_port,
                dst=str(datagram.dst),
                dst_port=datagram.dst_port,
                description=describe_payload(
                    datagram.payload, datagram.dst_port, datagram.src_port
                ),
                request_id=None if trace is None else trace.trace_id,
            )
        )

    @property
    def lines(self) -> List[str]:
        return [record.format() for record in self.records]

    def for_request(self, request_id: str) -> List[TraceRecord]:
        """The datagrams that crossed the wire under one request ID."""
        return [r for r in self.records if r.request_id == request_id]

    def detach(self) -> None:
        self.net.remove_tap(self._tap)

    def format(self) -> str:
        return "\n".join(self.lines)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


def correlated_report(tracer: ProtocolTracer) -> str:
    """Span tree plus wire trace, grouped by request ID.

    For each trace recorded by the network's span tracer: the span tree,
    then the datagrams tagged with that request ID.  Datagrams that
    crossed the wire outside any span are listed at the end.
    """
    spans = tracer.net.tracer
    sections: List[str] = []
    for rid in spans.request_ids():
        sections.append(format_span_tree(spans, request_id=rid))
        wire = tracer.for_request(rid)
        if wire:
            sections.append("\n".join("    " + r.format() for r in wire))
    orphans = [r for r in tracer.records if r.request_id is None]
    if orphans:
        sections.append("(no active span)")
        sections.append("\n".join("    " + r.format() for r in orphans))
    return "\n".join(sections)
