"""Human-readable protocol traces (a debugging/teaching tool).

Attach a :class:`ProtocolTracer` to a network and get an annotated,
tcpdump-style line for every datagram — with Kerberos messages decoded
to their type and cleartext fields (and only those: sealed payloads stay
sealed, like they would for any observer).

    tracer = ProtocolTracer(net)
    ... run protocol ...
    print(tracer.format())
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import KerberosError
from repro.core.messages import (
    ApRequest,
    AsRequest,
    ErrorReply,
    KdcReply,
    MessageType,
    PreauthAsRequest,
    TgsRequest,
    decode_message,
)
from repro.netsim.network import Datagram, Network
from repro.netsim.ports import (
    HESIOD_PORT,
    KDBM_PORT,
    KERBEROS_PORT,
    KPROP_PORT,
    MOUNTD_PORT,
    NFS_PORT,
    POP_PORT,
    SMS_PORT,
    ZEPHYR_PORT,
)

_PORT_NAMES = {
    KERBEROS_PORT: "kerberos",
    KDBM_PORT: "kdbm",
    KPROP_PORT: "kprop",
    POP_PORT: "pop",
    ZEPHYR_PORT: "zephyr",
    NFS_PORT: "nfs",
    MOUNTD_PORT: "mountd",
    HESIOD_PORT: "hesiod",
    SMS_PORT: "sms",
    543: "klogin",
    544: "kshell",
    514: "rshd",
    261: "register",
}


def describe_payload(payload: bytes, dst_port: int) -> str:
    """Best-effort one-line description of a datagram's contents."""
    if dst_port in (KERBEROS_PORT, 0):
        try:
            mtype, message = decode_message(payload)
        except KerberosError:
            return f"[{len(payload)} bytes]"
        if isinstance(message, AsRequest):
            return (f"AS-REQ  client={message.client} "
                    f"service={message.service} life={message.requested_life:.0f}s")
        if isinstance(message, PreauthAsRequest):
            return (f"AS-REQ* client={message.client} "
                    f"service={message.service} "
                    f"preauth=[{len(message.preauth)}B sealed]")
        if isinstance(message, TgsRequest):
            return (f"TGS-REQ service={message.service} "
                    f"tgt_realm={message.tgt_realm} "
                    f"tgt=[{len(message.tgt)}B sealed] "
                    f"authenticator=[{len(message.authenticator)}B sealed]")
        if isinstance(message, KdcReply):
            kind = "AS-REP " if mtype == MessageType.AS_REP else "TGS-REP"
            return (f"{kind} client={message.client} "
                    f"body=[{len(message.sealed_body)}B sealed]")
        if isinstance(message, ApRequest):
            return (f"AP-REQ  ticket=[{len(message.ticket)}B sealed] "
                    f"mutual={message.mutual} kvno={message.kvno}")
        if isinstance(message, ErrorReply):
            return f"ERROR   code={message.code} {message.text!r}"
        return f"{mtype.name} [{len(payload)} bytes]"
    return f"[{len(payload)} bytes]"


class ProtocolTracer:
    """Records and pretty-prints every datagram on a network."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.lines: List[str] = []
        self._tap = self._on_datagram
        net.add_tap(self._tap)

    def _on_datagram(self, datagram: Datagram) -> None:
        t = self.net.clock.now()
        port = datagram.dst_port
        service = _PORT_NAMES.get(port, str(port))
        description = describe_payload(datagram.payload, port)
        self.lines.append(
            f"{t:>10.3f}  {str(datagram.src):>15} -> "
            f"{str(datagram.dst):<15} {service:<9} {description}"
        )

    def detach(self) -> None:
        self.net.remove_tap(self._tap)

    def format(self) -> str:
        return "\n".join(self.lines)

    def clear(self) -> None:
        self.lines.clear()

    def __len__(self) -> int:
        return len(self.lines)
