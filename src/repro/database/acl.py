"""The KDBM access control list (paper Section 5.1).

*"If they are not the same, the KDBM server consults an access control
list (stored in a file on the master Kerberos system).  If the
requester's principal name is found in this file, the request is
permitted, otherwise it is denied."*

And the convention: *"names with a NULL instance (the default instance)
do not appear in the access control list file; instead, an admin
instance is used."*
"""

from __future__ import annotations

from typing import Iterable, List

from repro.principal import ADMIN_INSTANCE, Principal


class AclError(ValueError):
    """Raised when an entry violates the admin-instance convention."""


class AccessControlList:
    """The set of principals allowed to administer the database."""

    def __init__(self, entries: Iterable[Principal] = ()) -> None:
        self._entries: set = set()
        for entry in entries:
            self.add(entry)

    def add(self, principal: Principal) -> None:
        """Add an administrator.  NULL-instance names are rejected per the
        paper's convention: administrators act through an admin instance,
        keeping a distinct password for administration."""
        if not principal.instance:
            raise AclError(
                f"{principal} has the NULL instance; by convention only "
                f"'{ADMIN_INSTANCE}' instances appear in the ACL"
            )
        self._entries.add(str(principal))

    def remove(self, principal: Principal) -> None:
        self._entries.discard(str(principal))

    def check(self, principal: Principal) -> bool:
        """Is this (fully-qualified) principal an administrator?"""
        return str(principal) in self._entries

    def entries(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, principal: Principal) -> bool:
        return self.check(principal)

    # -- file representation ("stored in a file on the master") ------------

    def to_text(self) -> str:
        """One principal per line, as the historical ACL file."""
        return "".join(f"{entry}\n" for entry in self.entries())

    @classmethod
    def from_text(cls, text: str, default_realm: str = "") -> "AccessControlList":
        acl = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                acl.add(Principal.parse(line, default_realm=default_realm))
            except (AclError, ValueError) as exc:
                raise AclError(f"ACL line {lineno}: {exc}") from exc
        return acl

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_text())

    @classmethod
    def load(cls, path: str, default_realm: str = "") -> "AccessControlList":
        with open(path, "r", encoding="utf-8") as f:
            return cls.from_text(f.read(), default_realm=default_realm)
