"""The master database key.

Paper, Section 5.3: *"All passwords in the Kerberos database are
encrypted in the master database key.  Therefore, the information passed
from master to slave over the network is not useful to an eavesdropper."*
The same key authenticates database propagation: *"The checksum is
encrypted in the Kerberos master database key, which both the master and
slave Kerberos machines possess."*

The master key is derived from a password entered at database
initialization and may be *stashed* in a file on the (physically secure,
per Section 6.3) Kerberos machines so servers can restart unattended —
the historical ``.k`` file.
"""

from __future__ import annotations

from repro.crypto import (
    DesKey,
    IntegrityError,
    cbc_mac,
    keycache,
    seal,
    string_to_key,
    unseal,
    verify_cbc_mac,
)

#: Distinct sealed blobs each MasterKey remembers the unsealing of.
UNSEAL_CACHE_SIZE = 1024


class MasterKeyError(Exception):
    """Wrong master key, corrupt stash file, or failed verification."""


class MasterKey:
    """Wraps the realm's master DES key with its two duties:
    sealing principal keys at rest and authenticating database dumps.
    """

    def __init__(self, key: DesKey) -> None:
        if not isinstance(key, DesKey):
            raise TypeError(f"expected DesKey, got {type(key).__name__}")
        self._key = key
        # Content-addressed: the same sealed blob always unseals to the
        # same key under this master key, so entries never go stale —
        # a key change writes a *new* blob.
        self._unseal_cache = keycache._LruCache(UNSEAL_CACHE_SIZE)

    @classmethod
    def from_password(cls, password: str) -> "MasterKey":
        """Derive the master key exactly as a user key is derived."""
        return cls(string_to_key(password))

    # -- sealing principal keys ------------------------------------------

    def seal_key(self, principal_key: DesKey) -> bytes:
        """Encrypt a principal's key for storage in the database."""
        return seal(self._key, principal_key.key_bytes)

    def unseal_key(self, sealed: bytes) -> DesKey:
        """Recover a principal's key from its stored form.

        Results are cached by sealed blob (the KDC unseals the same few
        principal keys for every ticket it issues); the cache honors the
        global :func:`repro.crypto.keycache.caches_disabled` switch.
        """
        caching = keycache.caching_enabled()
        if caching:
            cached = self._unseal_cache.get(bytes(sealed))
            if cached is not None:
                return cached
        try:
            raw = unseal(self._key, sealed)
        except IntegrityError as exc:
            raise MasterKeyError(f"cannot unseal principal key: {exc}") from exc
        key = DesKey.from_bytes(raw, allow_weak=True)
        if caching:
            self._unseal_cache.put(bytes(sealed), key)
        return key

    # -- authenticating dumps (Figure 13) ---------------------------------

    def checksum(self, data: bytes) -> bytes:
        """The kprop checksum: a MAC keyed by the master key."""
        return cbc_mac(self._key, data)

    def verify_checksum(self, data: bytes, mac: bytes) -> bool:
        return verify_cbc_mac(self._key, data, mac)

    # -- stash file ----------------------------------------------------------

    def stash(self, path: str) -> None:
        """Write the key to a stash file (the historical ``.k`` file).

        The paper's operational answer to "where does the master key live
        while the server runs unattended" is the physical security of the
        Kerberos machines (Section 6.3); the stash file models that: it is
        plaintext on a host assumed physically secure.
        """
        with open(path, "wb") as f:
            f.write(b"KSTASH01" + self._key.key_bytes)

    @classmethod
    def load_stash(cls, path: str) -> "MasterKey":
        with open(path, "rb") as f:
            raw = f.read()
        if len(raw) != 16 or raw[:8] != b"KSTASH01":
            raise MasterKeyError(f"{path} is not a master key stash file")
        return cls(DesKey(raw[8:], allow_weak=True))

    # -- comparison (never expose bytes casually) -----------------------------

    @property
    def des_key(self) -> DesKey:
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MasterKey):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(("MasterKey", self._key))

    def __repr__(self) -> str:
        return "MasterKey(<sealed>)"
