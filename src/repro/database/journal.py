"""The database update journal: the substrate for incremental propagation.

The paper ships every slave a *full* database dump every hour ("The
database is sent, in its entirety, to the slave machines", Section 5.3)
— O(database) bytes per slave per password change.  The journal records
every mutation the master makes as a sequence-numbered entry, so the
propagation plane (:mod:`repro.replication`) can ship only the entries a
slave has not yet seen.  The hourly full dump of Figure 13 remains as
the safety net and the catch-up path.

Positions are identified by ``(epoch, seq)``:

* **seq** increases by one per mutation, starting at 1;
* **epoch** names one continuous journal history.  It changes when the
  history breaks — a different master (promotion after a disaster), a
  rebuilt database — so a slave can never mistake entries from one
  history for a continuation of another.

The journal is bounded: beyond :data:`DEFAULT_JOURNAL_LIMIT` entries the
oldest are compacted away into the *checkpoint* (the state a full dump
captures).  A slave whose position predates the oldest retained entry
simply gets a full dump — exactly the Figure 13 behaviour.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, List, Optional

from repro.encode import WireStruct, field

#: Journal entry opcodes (mirrors the store-level mutation surface).
OP_PUT = 1
OP_DELETE = 2

#: Entries retained before compaction into the checkpoint.
DEFAULT_JOURNAL_LIMIT = 4096


class JournalEntry(WireStruct):
    """One journaled mutation, as carried on the wire by delta kprop.

    ``value`` is the raw stored record (keys inside are already sealed
    under the master key, so entries — like full dumps — are useless to
    an eavesdropper); empty for deletions.
    """

    FIELDS = (
        field("seq", "u64"),
        field("time", "f64"),
        field("op", "u8"),
        field("key", "string"),
        field("value", "bytes"),
    )


def default_epoch(realm: str, generation: int = 0) -> int:
    """A deterministic epoch for a realm's journal.

    ``generation`` distinguishes successive masters of the same realm
    (slave promotion bumps it), so a promoted master's journal can never
    be mistaken for a continuation of the lost one's.
    """
    return (zlib.crc32(realm.encode("utf-8")) << 8) | (generation & 0xFF)


class UpdateJournal:
    """A bounded, sequence-numbered log of database mutations."""

    def __init__(
        self, epoch: int, limit: int = DEFAULT_JOURNAL_LIMIT
    ) -> None:
        if limit <= 0:
            raise ValueError(f"journal limit must be positive, got {limit}")
        self.epoch = int(epoch)
        self.limit = int(limit)
        self._entries: Deque[JournalEntry] = deque()
        #: Highest sequence number ever assigned (0 = nothing journaled).
        self.last_seq = 0
        #: Everything at or below this seq lives only in the checkpoint
        #: (a full dump); the journal retains (checkpoint_seq, last_seq].
        self.checkpoint_seq = 0

    # -- recording --------------------------------------------------------

    def append(self, op: int, key: str, value: bytes, now: float) -> JournalEntry:
        """Record one mutation; returns the entry (seq assigned here)."""
        if op not in (OP_PUT, OP_DELETE):
            raise ValueError(f"unknown journal opcode {op}")
        self.last_seq += 1
        entry = JournalEntry(
            seq=self.last_seq,
            time=float(now),
            op=op,
            key=key,
            value=bytes(value),
        )
        self._entries.append(entry)
        if len(self._entries) > self.limit:
            self.compact(keep=self.limit)
        return entry

    def compact(self, keep: Optional[int] = None) -> int:
        """Drop the oldest entries, folding them into the checkpoint.

        ``keep`` bounds how many recent entries survive (defaults to the
        journal limit).  Returns how many entries were dropped; slaves
        older than the new ``checkpoint_seq`` need a full dump.
        """
        keep = self.limit if keep is None else max(0, int(keep))
        dropped = 0
        while len(self._entries) > keep:
            entry = self._entries.popleft()
            self.checkpoint_seq = entry.seq
            dropped += 1
        return dropped

    def bump_epoch(self) -> int:
        """Start a new history (rebuilt/restored database): slaves with
        positions in the old epoch must take a full dump."""
        self.epoch += 1
        return self.epoch

    # -- reading ----------------------------------------------------------

    def entries_since(self, seq: int) -> Optional[List[JournalEntry]]:
        """Entries with sequence numbers in ``(seq, last_seq]``, in order.

        Returns None when the journal cannot supply them — the requested
        position predates the checkpoint (compacted away) or lies beyond
        ``last_seq`` (a position from some other history).  None means
        "send a full dump instead".
        """
        if seq > self.last_seq or seq < self.checkpoint_seq:
            return None
        return [e for e in self._entries if e.seq > seq]

    def entries_matching(self, seq, predicate) -> List[JournalEntry]:
        """Entries after ``seq`` whose key satisfies ``predicate`` —
        the shard-rebalance catch-up read (replay what was mutated in a
        hash range while its snapshot streamed).

        Unlike :meth:`entries_since`, a compacted position is an error
        here: rebalancing marked ``seq`` moments ago, so losing it means
        the journal is too small for the realm's churn.
        """
        if seq > self.last_seq or seq < self.checkpoint_seq:
            raise ValueError(
                f"journal position {seq} not retained "
                f"(checkpoint {self.checkpoint_seq}, last {self.last_seq})"
            )
        return [e for e in self._entries if e.seq > seq and predicate(e.key)]

    def depth(self) -> int:
        """Entries currently retained (the journal-depth gauge)."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"UpdateJournal(epoch={self.epoch}, last_seq={self.last_seq}, "
            f"checkpoint_seq={self.checkpoint_seq}, depth={self.depth()})"
        )
