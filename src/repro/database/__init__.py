"""The Kerberos database (paper Section 5).

*"The Kerberos database needs are straightforward; a record is held for
each principal, containing the name, private key, and expiration date of
the principal, along with some administrative information."*

The package mirrors the paper's Figure 1 components:

* :mod:`repro.database.store` — the replaceable record-storage module
  ("the current Athena implementation of the database library uses ndbm,
  although INGRES was originally used.  Other database management
  libraries could be used as well"): a common interface with in-memory
  and file-backed implementations;
* :mod:`repro.database.schema` — the per-principal record;
* :mod:`repro.database.masterkey` — the master database key under which
  "all passwords in the Kerberos database are encrypted" (Section 5.3);
* :mod:`repro.database.db` — the database library proper, used by the
  authentication server (read-only) and the KDBM server (read-write);
* :mod:`repro.database.acl` — the KDBM access control list (Section 5.1);
* :mod:`repro.database.admin_tools` — the database administration
  programs (initialization, registration, dump/load).
"""

from repro.database.acl import AccessControlList
from repro.database.db import (
    DatabaseError,
    KerberosDatabase,
    NoSuchPrincipal,
    PrincipalExists,
    ReadOnlyDatabase,
)
from repro.database.journal import JournalEntry, UpdateJournal
from repro.database.masterkey import MasterKey
from repro.database.schema import DEFAULT_MAX_LIFE, PrincipalRecord
from repro.database.sqlstore import SqliteStore
from repro.database.store import FileStore, MemoryStore, RecordStore

__all__ = [
    "AccessControlList",
    "DatabaseError",
    "DEFAULT_MAX_LIFE",
    "FileStore",
    "JournalEntry",
    "KerberosDatabase",
    "MasterKey",
    "MemoryStore",
    "NoSuchPrincipal",
    "PrincipalExists",
    "PrincipalRecord",
    "ReadOnlyDatabase",
    "RecordStore",
    "SqliteStore",
    "UpdateJournal",
]
