"""The Kerberos database library (paper Sections 2.2 and 5).

Two kinds of consumer, with different rights:

* the **authentication server** "performs read-only operations on the
  Kerberos database, namely, the authentication of principals, and
  generation of session keys" — it may run against a slave copy;
* the **administration server (KDBM)** needs write access and "may only
  run on the machine housing the Kerberos database".

A :class:`KerberosDatabase` opened with ``readonly=True`` (every slave
copy) raises :class:`ReadOnlyDatabase` on any mutation, which is the
mechanism behind Figures 10 and 11.

Every database carries the historical ``K.M`` verification principal —
the master key sealed under itself — so opening a database with the wrong
master key fails immediately instead of corrupting records later.
"""

from __future__ import annotations

from typing import List, Optional

from repro.crypto import DesKey, keycache, string_to_key
from repro.database.journal import (
    DEFAULT_JOURNAL_LIMIT,
    JournalEntry,
    OP_DELETE,
    OP_PUT,
    UpdateJournal,
    default_epoch,
)
from repro.database.masterkey import MasterKey, MasterKeyError
from repro.database.schema import (
    DEFAULT_EXPIRATION_DELTA,
    DEFAULT_MAX_LIFE,
    PrincipalRecord,
)
from repro.database.store import MemoryStore, RecordStore
from repro.encode import Decoder, DecodeError, Encoder
from repro.principal import Principal

#: The master-key verification principal, as in the historical database.
MASTER_VERIFY_KEY = "K.M"

#: Decoded :class:`PrincipalRecord` objects each database keeps around.
RECORD_CACHE_SIZE = 4096

#: Dump format v2: v1 plus the journal position (epoch, seq) the dump
#: captures, so a slave loading it knows where delta catch-up resumes.
_DUMP_MAGIC = b"KDBDUMP2"


class DatabaseError(Exception):
    """Base class for Kerberos database errors."""


class NoSuchPrincipal(DatabaseError):
    """Lookup failed: the authentication server 'checks that it knows
    about the client' and this is the failure branch."""


class PrincipalExists(DatabaseError):
    """Registration collided with an existing entry (the register
    program's uniqueness check, Section 7.1)."""


class ReadOnlyDatabase(DatabaseError):
    """A mutation was attempted on a slave copy (Figure 11)."""


class KerberosDatabase:
    """The realm's principal database plus its master key."""

    def __init__(
        self,
        realm: str,
        master_key: MasterKey,
        store: Optional[RecordStore] = None,
        readonly: bool = False,
        journal_epoch: Optional[int] = None,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> None:
        if not realm:
            raise ValueError("realm must not be empty")
        self.realm = realm
        self.master_key = master_key
        self.store = store if store is not None else MemoryStore()
        self.readonly = readonly
        self._record_cache = keycache._LruCache(RECORD_CACHE_SIZE)
        # Zero-argument callbacks fired after any principal mutation —
        # journaled writes on a master, delta/dump application on a
        # slave.  The KDC registers its sealed-ticket skeleton
        # invalidation here.
        self.mutation_listeners: List = []
        # Writable (master) databases journal every mutation for delta
        # propagation; read-only copies instead track the journal
        # position they have applied up to (fed by load_dump/apply_entries).
        self.journal: Optional[UpdateJournal] = (
            None
            if readonly
            else UpdateJournal(
                epoch=(
                    journal_epoch
                    if journal_epoch is not None
                    else default_epoch(realm)
                ),
                limit=journal_limit,
            )
        )
        self.loaded_epoch: Optional[int] = None
        self.loaded_seq: int = 0
        if len(self.store) == 0 and not readonly:
            self._install_verifier()
        elif len(self.store) > 0:
            self.verify_master_key()

    # -- master key verification ------------------------------------------

    def _install_verifier(self) -> None:
        sealed = self.master_key.seal_key(self.master_key.des_key)
        record = PrincipalRecord(
            name="K",
            instance="M",
            sealed_key=sealed,
            key_version=1,
            expiration=float("inf"),
            max_life=0.0,
            attributes=0,
            mod_time=0.0,
            mod_by="kdb_init",
        )
        self._journal_put(MASTER_VERIFY_KEY, record.to_bytes(), now=0.0)

    def verify_master_key(self) -> None:
        """Check the K.M record opens under our master key."""
        raw = self.store.get(MASTER_VERIFY_KEY)
        if raw is None:
            raise DatabaseError("database has no K.M verification record")
        record = PrincipalRecord.from_bytes(raw)
        try:
            recovered = self.master_key.unseal_key(record.sealed_key)
        except MasterKeyError as exc:
            raise DatabaseError(f"master key verification failed: {exc}") from exc
        if recovered != self.master_key.des_key:
            raise DatabaseError("master key verification failed: key mismatch")

    # -- the journaled store API -------------------------------------------------
    #
    # Every principal-record mutation on a writable database goes through
    # these two helpers, which append to the update journal *and* write
    # the store.  They are the only sanctioned mutation path (an AST lint
    # bans direct store mutation outside this package), which is what
    # makes the journal a complete record — the precondition for delta
    # propagation being equivalent to a full dump.

    def _journal_put(self, key: str, value: bytes, now: float) -> None:
        if self.journal is not None:
            self.journal.append(OP_PUT, key, value, now)
        self.store.put(key, value)
        self._notify_mutation()

    def _journal_delete(self, key: str, now: float) -> bool:
        existed = self.store.delete(key)
        if existed and self.journal is not None:
            self.journal.append(OP_DELETE, key, b"", now)
        if existed:
            self._notify_mutation()
        return existed

    def _notify_mutation(self) -> None:
        for listener in self.mutation_listeners:
            listener()

    # -- guards ----------------------------------------------------------------

    def _writable(self) -> None:
        if self.readonly:
            raise ReadOnlyDatabase(
                f"database copy for realm {self.realm} is read-only "
                "(changes may only be made on the master, Section 5)"
            )

    def _local(self, principal: Principal) -> Principal:
        """Accept names with our realm or with no realm; reject foreign."""
        if principal.realm and principal.realm != self.realm:
            raise NoSuchPrincipal(
                f"{principal} belongs to realm {principal.realm!r}, "
                f"this database serves {self.realm!r}"
            )
        return principal

    # -- reads -------------------------------------------------------------------

    def get_record(self, principal: Principal) -> PrincipalRecord:
        """Fetch and decode a principal's record.

        Decoded records are cached per store key, validated against the
        *raw stored bytes* on every hit — any write path (kadmin, kpasswd,
        :meth:`load_dump`, even direct store manipulation) changes the
        bytes and therefore misses, so the cache can never serve a stale
        record and needs no invalidation hooks.
        """
        self._local(principal)
        db_key = principal.db_key()
        raw = self.store.get(db_key)
        if raw is None:
            raise NoSuchPrincipal(f"no principal {principal} in {self.realm}")
        if keycache.caching_enabled():
            cached = self._record_cache.get(db_key)
            if cached is not None and cached[0] == raw:
                return cached[1]
            record = PrincipalRecord.from_bytes(raw)
            self._record_cache.put(db_key, (raw, record))
            return record
        return PrincipalRecord.from_bytes(raw)

    def exists(self, principal: Principal) -> bool:
        try:
            self.get_record(principal)
            return True
        except NoSuchPrincipal:
            return False

    def principal_key(self, principal: Principal) -> DesKey:
        """Unseal and return a principal's private key.

        The hot path is fully cached: the record decode above, the
        sealed-blob→key mapping in :meth:`MasterKey.unseal_key`, and the
        key schedule itself via ``DesKey.from_bytes``.
        """
        return self.master_key.unseal_key(self.get_record(principal).sealed_key)

    def list_principals(self) -> List[str]:
        return [k for k in self.store.keys() if k != MASTER_VERIFY_KEY]

    def __len__(self) -> int:
        return max(0, len(self.store) - 1)  # exclude K.M

    # -- writes (master only) -------------------------------------------------------

    def add_principal(
        self,
        principal: Principal,
        key: Optional[DesKey] = None,
        password: Optional[str] = None,
        now: float = 0.0,
        expiration: Optional[float] = None,
        max_life: float = DEFAULT_MAX_LIFE,
        attributes: int = 0,
        mod_by: str = "kadmin",
    ) -> PrincipalRecord:
        """Register a principal with either an explicit key or a password.

        "The private keys are negotiated at registration" (Section 2.1);
        users register with a password, servers usually with "an
        automatically generated random key" (Section 6.3).
        """
        self._writable()
        self._local(principal)
        if (key is None) == (password is None):
            raise ValueError("provide exactly one of key= or password=")
        if principal.db_key() == MASTER_VERIFY_KEY:
            raise ValueError("K.M is reserved for master key verification")
        if self.store.get(principal.db_key()) is not None:
            raise PrincipalExists(f"{principal} already registered")
        if key is None:
            key = string_to_key(password)
        record = PrincipalRecord(
            name=principal.name,
            instance=principal.instance,
            sealed_key=self.master_key.seal_key(key),
            key_version=1,
            expiration=(
                expiration if expiration is not None
                else now + DEFAULT_EXPIRATION_DELTA
            ),
            max_life=max_life,
            attributes=attributes,
            mod_time=now,
            mod_by=mod_by,
        )
        self._journal_put(principal.db_key(), record.to_bytes(), now=now)
        return record

    def change_key(
        self,
        principal: Principal,
        new_key: Optional[DesKey] = None,
        new_password: Optional[str] = None,
        now: float = 0.0,
        mod_by: str = "kpasswd",
    ) -> PrincipalRecord:
        """Change a principal's key (kpasswd / kadmin cpw)."""
        self._writable()
        record = self.get_record(principal)
        if (new_key is None) == (new_password is None):
            raise ValueError("provide exactly one of new_key= or new_password=")
        if new_key is None:
            new_key = string_to_key(new_password)
        updated = record.replace(
            sealed_key=self.master_key.seal_key(new_key),
            key_version=record.key_version + 1,
            mod_time=now,
            mod_by=mod_by,
        )
        self._journal_put(principal.db_key(), updated.to_bytes(), now=now)
        return updated

    def set_attributes(
        self, principal: Principal, attributes: int, now: float = 0.0,
        mod_by: str = "kadmin",
    ) -> PrincipalRecord:
        self._writable()
        record = self.get_record(principal)
        updated = record.replace(
            attributes=attributes, mod_time=now, mod_by=mod_by
        )
        self._journal_put(principal.db_key(), updated.to_bytes(), now=now)
        return updated

    def set_max_life(
        self, principal: Principal, max_life: float, now: float = 0.0,
        mod_by: str = "kadmin",
    ) -> PrincipalRecord:
        """Change a principal's maximum ticket lifetime — the knob the
        Section 8 lifetime-tradeoff discussion is about."""
        self._writable()
        record = self.get_record(principal)
        updated = record.replace(max_life=max_life, mod_time=now, mod_by=mod_by)
        self._journal_put(principal.db_key(), updated.to_bytes(), now=now)
        return updated

    def delete_principal(self, principal: Principal, now: float = 0.0) -> None:
        self._writable()
        self._local(principal)
        if not self._journal_delete(principal.db_key(), now=now):
            raise NoSuchPrincipal(f"no principal {principal} in {self.realm}")

    # -- record import / removal (shard rebalancing) ---------------------------------

    def import_record(self, key: str, value: bytes, now: float = 0.0) -> None:
        """Adopt a raw stored record from another shard of the same realm.

        Unlike :meth:`apply_entries`, this is a *master-side* write: it
        journals, so the importing shard's own slaves replicate the moved
        record through ordinary delta propagation.  The record bytes are
        already sealed under the (realm-wide) master key — they transfer
        verbatim.
        """
        self._writable()
        if key == MASTER_VERIFY_KEY:
            raise ValueError("K.M is reserved for master key verification")
        self._journal_put(key, bytes(value), now=now)

    def remove_record(self, key: str, now: float = 0.0) -> bool:
        """Drop a record this shard no longer owns (post-move cleanup).

        Journaled like :meth:`import_record`, for the same reason; absent
        keys are not an error (the range may be sparsely populated).
        Returns whether the record existed.
        """
        self._writable()
        if key == MASTER_VERIFY_KEY:
            raise ValueError("K.M is reserved for master key verification")
        return self._journal_delete(key, now=now)

    # -- dump / load (Figure 13) -----------------------------------------------------

    def dump(self, now: float = 0.0) -> bytes:
        """Serialize the entire database ("The database is sent, in its
        entirety, to the slave machines").  Keys inside are already sealed
        under the master key, so the dump is eavesdropper-safe.

        The header carries the journal position ``(epoch, seq)`` the dump
        captures — the checkpoint a slave resumes delta catch-up from.
        """
        enc = Encoder()
        enc.raw(_DUMP_MAGIC)
        enc.string(self.realm)
        enc.f64(now)
        if self.journal is not None:
            enc.u64(self.journal.epoch).u64(self.journal.last_seq)
        else:
            # A replica re-dumping (promotion drills): carry the position
            # it last applied, so its own downstream stays consistent.
            enc.u64(self.loaded_epoch or 0).u64(self.loaded_seq)
        entries = list(self.store.items())
        enc.u32(len(entries))
        for key, value in entries:
            enc.string(key)
            enc.bytes_(value)
        return enc.getvalue()

    def load_dump(self, data: bytes) -> int:
        """Replace the database contents from a dump (slave update).

        Bypasses the read-only guard deliberately: propagation is the one
        sanctioned way slave contents change.  Returns the record count;
        ``loaded_epoch``/``loaded_seq`` record the journal position the
        dump captured, from which delta catch-up resumes.
        """
        dec = Decoder(data)
        try:
            if dec.raw(len(_DUMP_MAGIC)) != _DUMP_MAGIC:
                raise DatabaseError("not a Kerberos database dump")
            realm = dec.string()
            if realm != self.realm:
                raise DatabaseError(
                    f"dump is for realm {realm!r}, this database is {self.realm!r}"
                )
            dump_time = dec.f64()
            epoch = dec.u64()
            seq = dec.u64()
            count = dec.u32()
            entries = [(dec.string(), dec.bytes_()) for _ in range(count)]
            dec.expect_eof()
        except DecodeError as exc:
            raise DatabaseError(f"corrupt dump: {exc}") from exc
        self.store.clear()
        for key, value in entries:
            self.store.put(key, value)
        self.verify_master_key()
        self.dump_time = dump_time
        self.loaded_epoch = epoch
        self.loaded_seq = seq
        self._notify_mutation()
        return count

    def apply_entries(self, entries: List[JournalEntry]) -> int:
        """Apply journal entries to a slave copy (delta update).

        Like :meth:`load_dump`, this deliberately bypasses the read-only
        guard: delta propagation is the other sanctioned way slave
        contents change.  The caller (kpropd) is responsible for checksum
        verification and gap/epoch checking *before* applying; this
        method only replays.  Returns the number of entries applied and
        advances ``loaded_seq``.
        """
        applied = 0
        for entry in entries:
            if entry.op == OP_PUT:
                self.store.put(entry.key, entry.value)
            elif entry.op == OP_DELETE:
                self.store.delete(entry.key)
            else:
                raise DatabaseError(f"unknown journal opcode {entry.op}")
            self.loaded_seq = entry.seq
            applied += 1
        if applied:
            self._notify_mutation()
        return applied

    def replica(self, store: Optional[RecordStore] = None) -> "KerberosDatabase":
        """Create an empty read-only copy for a slave machine, then feed it
        via :meth:`load_dump`."""
        slave = KerberosDatabase.__new__(KerberosDatabase)
        slave.realm = self.realm
        slave.master_key = self.master_key
        slave.store = store if store is not None else MemoryStore()
        slave.readonly = True
        slave._record_cache = keycache._LruCache(RECORD_CACHE_SIZE)
        slave.mutation_listeners = []
        slave.journal = None
        slave.loaded_epoch = None
        slave.loaded_seq = 0
        return slave
