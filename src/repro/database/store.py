"""Replaceable record storage underneath the Kerberos database.

Paper, Section 2.2: *"Another replaceable module is the database
management system.  The current Athena implementation of the database
library uses ndbm, although INGRES was originally used."*

The replaceable boundary is :class:`RecordStore`: string keys to byte
values with iteration.  Two implementations are provided — an in-memory
dict (the default for simulations) and an ndbm-flavoured file store that
persists every mutation to an append-only log and compacts on demand.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.encode import DecodeError, Decoder, Encoder


class StoreError(Exception):
    """Raised when the storage layer itself fails (corrupt file, etc.)."""


class RecordStore(abc.ABC):
    """Key/value records: the interface the database library builds on."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[bytes]:
        """Return the value for ``key``, or None when absent."""

    @abc.abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Insert or replace the value for ``key``."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return True if it existed."""

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[str, bytes]]:
        """Iterate (key, value) pairs in sorted key order."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove every record (used when a slave loads a new dump)."""

    def keys(self) -> List[str]:
        return [k for k, _ in self.items()]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    @abc.abstractmethod
    def __len__(self) -> int:
        ...


class MemoryStore(RecordStore):
    """Dict-backed store, the workhorse for simulated realms."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"key must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")
        self._data[key] = bytes(value)

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key in sorted(self._data):
            yield key, self._data[key]

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


# Log-record opcodes for the file store.
_OP_PUT = 1
_OP_DELETE = 2
_MAGIC = b"KDB1"


class FileStore(RecordStore):
    """File-backed store in the spirit of ndbm.

    Mutations append (opcode, key, value) records to a log file; opening
    replays the log.  :meth:`compact` rewrites the file to contain only
    live records.  The format is deliberately simple — the point is that
    the database library above cannot tell this store from the in-memory
    one, demonstrating the paper's replaceability claim.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._data: Dict[str, bytes] = {}
        if os.path.exists(self.path):
            self._replay()
        else:
            with open(self.path, "wb") as f:
                f.write(_MAGIC)

    def _replay(self) -> None:
        with open(self.path, "rb") as f:
            raw = f.read()
        if raw[:4] != _MAGIC:
            raise StoreError(f"{self.path} is not a Kerberos store file")
        dec = Decoder(raw[4:])
        try:
            while not dec.eof():
                op = dec.u8()
                key = dec.string()
                if op == _OP_PUT:
                    self._data[key] = dec.bytes_()
                elif op == _OP_DELETE:
                    self._data.pop(key, None)
                else:
                    raise StoreError(f"corrupt log opcode {op} in {self.path}")
        except DecodeError as exc:
            raise StoreError(f"corrupt store file {self.path}: {exc}") from exc

    def _append(self, op: int, key: str, value: bytes = b"") -> None:
        enc = Encoder()
        enc.u8(op).string(key)
        if op == _OP_PUT:
            enc.bytes_(value)
        with open(self.path, "ab") as f:
            f.write(enc.getvalue())

    def get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"key must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")
        value = bytes(value)
        self._data[key] = value
        self._append(_OP_PUT, key, value)

    def delete(self, key: str) -> bool:
        existed = self._data.pop(key, None) is not None
        if existed:
            self._append(_OP_DELETE, key)
        return existed

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key in sorted(self._data):
            yield key, self._data[key]

    def clear(self) -> None:
        self._data.clear()
        with open(self.path, "wb") as f:
            f.write(_MAGIC)

    def compact(self) -> None:
        """Rewrite the log with only live records."""
        enc = Encoder()
        for key, value in self.items():
            enc.u8(_OP_PUT).string(key).bytes_(value)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(_MAGIC + enc.getvalue())
        os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self._data)
