"""A relational record store (paper Section 2.2's replaceability claim).

*"Another replaceable module is the database management system.  The
current Athena implementation of the database library uses ndbm,
although INGRES was originally used.  Other database management
libraries could be used as well."*

INGRES — a real relational DBMS — was the original backend.  This module
makes the same point with SQLite: a genuine SQL database behind the very
same :class:`~repro.database.store.RecordStore` interface, completely
invisible to the database library, the KDC, and everything above them.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, Optional, Tuple

from repro.database.store import RecordStore


class SqliteStore(RecordStore):
    """Principal records in a SQLite table.

    ``path`` may be a filesystem path or ``":memory:"``.  Writes commit
    immediately — the KDBM's changes must survive a master crash.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS principals ("
            "  key   TEXT PRIMARY KEY,"
            "  value BLOB NOT NULL"
            ")"
        )
        self._conn.commit()

    def get(self, key: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT value FROM principals WHERE key = ?", (key,)
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(key, str):
            raise TypeError(f"key must be str, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"value must be bytes, got {type(value).__name__}")
        self._conn.execute(
            "INSERT INTO principals (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, bytes(value)),
        )
        self._conn.commit()

    def delete(self, key: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM principals WHERE key = ?", (key,)
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def items(self) -> Iterator[Tuple[str, bytes]]:
        for key, value in self._conn.execute(
            "SELECT key, value FROM principals ORDER BY key"
        ):
            yield key, bytes(value)

    def clear(self) -> None:
        self._conn.execute("DELETE FROM principals")
        self._conn.commit()

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM principals"
        ).fetchone()
        return count

    def close(self) -> None:
        self._conn.close()
