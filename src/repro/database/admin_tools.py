"""Database administration programs (paper Figure 1 and Section 6.3).

*"The Kerberos administrator's job begins with running a program to
initialize the database.  Another program must be run to register
essential principals in the database, such as the Kerberos
administrator's name with an admin instance."*

These are those programs:

* :func:`kdb_init` — create a realm database, derive the master key,
  and register the essential principals (the TGS and the KDBM service);
* :func:`register_essential_admin` — the administrator's admin instance
  plus its ACL entry;
* :func:`kdb_util_dump` / :func:`kdb_util_load` — offline dump/restore
  to a file (the administrator "would also be wise to maintain backups
  of the Master database");
* :func:`ext_srvtab` — extract a server's key into its ``/etc/srvtab``
  equivalent ("some data (including the server's key) must be extracted
  from the database and installed in a file on the server's machine").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.crypto import KeyGenerator
from repro.database.acl import AccessControlList
from repro.database.db import KerberosDatabase
from repro.database.masterkey import MasterKey
from repro.database.schema import ATTR_NO_TGT, DEFAULT_MAX_LIFE
from repro.database.store import RecordStore
from repro.encode import Decoder, Encoder
from repro.principal import Principal, kdbm_principal, tgs_principal


def kdb_init(
    realm: str,
    master_password: str,
    keygen: KeyGenerator,
    store: Optional[RecordStore] = None,
    now: float = 0.0,
) -> KerberosDatabase:
    """Initialize a realm: master key, K.M verifier, TGS and KDBM entries.

    The KDBM service is registered with :data:`ATTR_NO_TGT` because "the
    ticket-granting service will not issue tickets for it. Instead, the
    authentication service itself must be used" (Section 5.1).
    """
    master = MasterKey.from_password(master_password)
    db = KerberosDatabase(realm, master, store=store)
    db.add_principal(
        tgs_principal(realm),
        key=keygen.session_key(),
        now=now,
        mod_by="kdb_init",
    )
    db.add_principal(
        kdbm_principal(realm),
        key=keygen.session_key(),
        now=now,
        attributes=ATTR_NO_TGT,
        mod_by="kdb_init",
    )
    return db


def register_essential_admin(
    db: KerberosDatabase,
    acl: AccessControlList,
    username: str,
    admin_password: str,
    now: float = 0.0,
) -> Principal:
    """Create ``username.admin`` and put it on the ACL (Section 5.1)."""
    admin = Principal(username, "admin", db.realm)
    db.add_principal(admin, password=admin_password, now=now, mod_by="kdb_edit")
    acl.add(admin)
    return admin


def register_service(
    db: KerberosDatabase,
    service: Principal,
    keygen: KeyGenerator,
    now: float = 0.0,
    max_life: float = DEFAULT_MAX_LIFE,
):
    """Register a network service with a random key (Section 6.3) and
    return the key for srvtab installation."""
    key = keygen.session_key()
    db.add_principal(
        service, key=key, now=now, max_life=max_life, mod_by="kdb_edit"
    )
    return key


# -- offline backup (kdb_util) ------------------------------------------------

def kdb_util_dump(db: KerberosDatabase, path: str, now: float = 0.0) -> None:
    """Write a full database dump to a file."""
    with open(path, "wb") as f:
        f.write(db.dump(now=now))


def kdb_util_load(db: KerberosDatabase, path: str) -> int:
    """Restore a database from a dump file; returns the record count."""
    with open(path, "rb") as f:
        return db.load_dump(f.read())


# -- srvtab extraction (ext_srvtab) ----------------------------------------------

_SRVTAB_MAGIC = b"SRVTAB01"


def ext_srvtab(db: KerberosDatabase, services: List[Principal]) -> bytes:
    """Extract service keys into srvtab file contents.

    "The /etc/srvtab file authenticates the server as a password typed at
    a terminal authenticates the user" (Section 6.3).  The result is
    installed on the server's machine; see
    :class:`repro.core.applib.SrvTab` for the reader.
    """
    enc = Encoder()
    enc.raw(_SRVTAB_MAGIC)
    enc.u32(len(services))
    for service in services:
        record = db.get_record(service)
        key = db.principal_key(service)
        enc.string(service.name)
        enc.string(service.instance)
        enc.string(db.realm)
        enc.u32(record.key_version)
        enc.bytes_(key.key_bytes)
    return enc.getvalue()


def parse_srvtab(data: bytes) -> List[Tuple[Principal, int, bytes]]:
    """Parse srvtab bytes into (principal, key_version, key_bytes) rows."""
    dec = Decoder(data)
    if dec.raw(len(_SRVTAB_MAGIC)) != _SRVTAB_MAGIC:
        raise ValueError("not a srvtab file")
    count = dec.u32()
    rows = []
    for _ in range(count):
        name = dec.string()
        instance = dec.string()
        realm = dec.string()
        version = dec.u32()
        key = dec.bytes_()
        rows.append((Principal(name, instance, realm), version, key))
    dec.expect_eof()
    return rows
