"""The per-principal database record.

Paper, Section 2.2: *"a record is held for each principal, containing
the name, private key, and expiration date of the principal, along with
some administrative information.  (The expiration date is the date after
which an entry is no longer valid.  It is usually set to a few years
into the future at registration.)"*

The private key field holds the key *sealed under the master database
key* (Section 5.3: "All passwords in the Kerberos database are encrypted
in the master database key"), so a dump of these records is safe to send
to slaves over the network.
"""

from __future__ import annotations

from repro.encode import WireStruct, field
from repro.netsim.clock import HOUR

#: Default ticket lifetime granted for a service: the paper's
#: "currently 8 hours" (Section 6.1).
DEFAULT_MAX_LIFE = 8 * HOUR

#: "a few years into the future at registration" — five years of
#: simulated seconds.
DEFAULT_EXPIRATION_DELTA = 5 * 365 * 24 * HOUR

#: Attribute flag: entry disabled by an administrator.
ATTR_DISABLED = 1 << 0
#: Attribute flag: principal may not be issued a ticket-granting ticket
#: (set on the KDBM service itself, which must be reached via the AS).
ATTR_NO_TGT = 1 << 1
#: Attribute flag (extension, not in the 1988 paper): the AS refuses to
#: answer for this principal unless the request proves knowledge of the
#: principal's key — closing the active offline-guessing probe.  Added
#: to Kerberos shortly after the paper; V5 made it standard.
ATTR_REQUIRE_PREAUTH = 1 << 2


class PrincipalRecord(WireStruct):
    """One row of the Kerberos database.

    ``sealed_key`` is the principal's DES key encrypted in the master
    database key.  ``key_version`` increments on every password change so
    stale srvtabs are detectable.  ``max_life`` is "the default for the
    service" used in the Figure 8 lifetime rule.  ``mod_time``/``mod_by``
    are the administrative audit fields.
    """

    FIELDS = (
        field("name", "string"),
        field("instance", "string"),
        field("sealed_key", "bytes"),
        field("key_version", "u32"),
        field("expiration", "f64"),
        field("max_life", "f64"),
        field("attributes", "u32"),
        field("mod_time", "f64"),
        field("mod_by", "string"),
    )

    @property
    def disabled(self) -> bool:
        return bool(self.attributes & ATTR_DISABLED)

    @property
    def tgt_allowed(self) -> bool:
        return not self.attributes & ATTR_NO_TGT

    @property
    def requires_preauth(self) -> bool:
        return bool(self.attributes & ATTR_REQUIRE_PREAUTH)

    def expired(self, now: float) -> bool:
        return now >= self.expiration

    def db_key(self) -> str:
        return f"{self.name}.{self.instance}" if self.instance else self.name
