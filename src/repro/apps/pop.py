"""The Kerberized Post Office Protocol (paper Section 7.1).

*"We have modified the Post Office Protocol to use Kerberos for
authenticating users who wish to retrieve their electronic mail from the
'post office'."*

Authorization is the simplest possible scheme built "on top of the
authentication that Kerberos provides": the authenticated principal's
primary name selects the mailbox, and nobody reads anyone else's mail.
Mail content is retrieved at the PRIVATE protection level — it travels
encrypted in the session key.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.kerberized import (
    KerberizedChannel,
    KerberizedServer,
    Protection,
)
from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.errors import ErrorCode, KerberosError
from repro.netsim.ports import POP_PORT
from repro.principal import Principal


class PopServer(KerberizedServer):
    """One post office holding per-user mailboxes."""

    def __init__(
        self,
        service: Principal,
        srvtab: SrvTab,
        port: int = POP_PORT,
    ) -> None:
        super().__init__(service, srvtab, port)
        self._mailboxes: Dict[str, List[bytes]] = {}

    def deliver(self, username: str, message: bytes) -> None:
        """Local delivery into a mailbox (the MTA side, out of scope)."""
        self._mailboxes.setdefault(username, []).append(bytes(message))

    def handle(self, session, data: bytes) -> bytes:
        mailbox = self._mailboxes.setdefault(session.client.name, [])
        parts = data.decode("utf-8").split(" ", 1)
        command = parts[0].upper()
        if command == "STAT":
            total = sum(len(m) for m in mailbox)
            return f"+OK {len(mailbox)} {total}".encode()
        if command == "RETR":
            index = int(parts[1])
            if not 1 <= index <= len(mailbox):
                raise KerberosError(ErrorCode.APP_ERROR, "no such message")
            return b"+OK\r\n" + mailbox[index - 1]
        if command == "DELE":
            index = int(parts[1])
            if not 1 <= index <= len(mailbox):
                raise KerberosError(ErrorCode.APP_ERROR, "no such message")
            del mailbox[index - 1]
            return b"+OK deleted"
        raise KerberosError(ErrorCode.APP_ERROR, f"unknown command {command}")


class PopClient:
    """The user agent's view of the post office."""

    def __init__(
        self,
        krb: KerberosClient,
        service: Principal,
        server_address,
        port: int = POP_PORT,
    ) -> None:
        # PRIVATE: mail bodies are encrypted on the wire.
        self.channel = KerberizedChannel(
            krb, service, server_address, port, protection=Protection.PRIVATE
        )

    def stat(self) -> int:
        reply = self.channel.call(b"STAT").decode("utf-8")
        return int(reply.split()[1])

    def retrieve(self, index: int) -> bytes:
        reply = self.channel.call(f"RETR {index}".encode())
        return reply.split(b"\r\n", 1)[1]

    def delete(self, index: int) -> None:
        self.channel.call(f"DELE {index}".encode())

    def quit(self) -> None:
        self.channel.close()
