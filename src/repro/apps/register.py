"""The sign-up program (paper Section 7.1).

*"The program for signing up new users, called register, uses both the
Service Management System (SMS) and Kerberos.  From SMS, it determines
whether the information entered by the would-be new Athena user, such as
name and MIT identification number, is valid.  It then checks with
Kerberos to see if the requested username is unique.  If all goes well,
a new entry is made to the Kerberos database, containing the username
and password."*

The server side runs on the master Kerberos machine (it writes the
database); the new password rides to it inside a private message sealed
in a *registration key* derived from the user's MIT id — modelling the
real program's property that the password is not sent in the clear even
before the user has any Kerberos key.
"""

from __future__ import annotations


from repro.apps.sms import sms_validate
from repro.core.errors import KerberosError
from repro.core.service import Service
from repro.core.safe_priv import PrivMessage, krb_mk_priv, krb_rd_priv
from repro.crypto import string_to_key
from repro.database.db import KerberosDatabase, PrincipalExists
from repro.encode import DecodeError, WireStruct, field
from repro.netsim import IPAddress
from repro.netsim.ports import REGISTER_PORT
from repro.principal import Principal, PrincipalError


class RegisterBody(WireStruct):
    FIELDS = (
        field("username", "string"),
        field("password", "string"),
    )


class RegisterRequest(WireStruct):
    FIELDS = (
        field("fullname", "string"),
        field("mit_id", "string"),
        field("private_body", "bytes"),  # RegisterBody sealed in the id-derived key
    )


class RegisterReply(WireStruct):
    FIELDS = (field("ok", "bool"), field("text", "string"))


def _registration_key(mit_id: str, fullname: str):
    """The shared secret a brand-new user and the registrar both know."""
    return string_to_key(mit_id, salt=fullname)


class RegisterServer(Service):
    """Runs on the master machine; writes the database directly."""

    def __init__(
        self,
        db: KerberosDatabase,
        sms_address=None,
        port: int = REGISTER_PORT,
    ) -> None:
        super().__init__()
        if sms_address is None:
            raise ValueError("RegisterServer requires an sms_address")
        self.db = db
        self.sms_address = IPAddress(sms_address)
        self.port = port
        self.registrations = 0

    def ports(self):
        return {self.port: self._handle}

    def _handle(self, datagram) -> bytes:
        try:
            request = RegisterRequest.from_bytes(datagram.payload)
        except DecodeError:
            return RegisterReply(ok=False, text="malformed request").to_bytes()

        # Step 1: SMS validity (name + MIT id).
        if not sms_validate(
            self.host, self.sms_address, request.fullname, request.mit_id
        ):
            return RegisterReply(
                ok=False, text="SMS: not a valid MIT affiliate"
            ).to_bytes()

        # Decrypt the username/password with the id-derived key.
        key = _registration_key(request.mit_id, request.fullname)
        try:
            body = RegisterBody.from_bytes(
                krb_rd_priv(
                    PrivMessage.from_bytes(request.private_body),
                    key,
                    expected_sender=datagram.src,
                    now=self.host.clock.now(),
                )
            )
        except (KerberosError, DecodeError):
            return RegisterReply(
                ok=False, text="could not decrypt registration"
            ).to_bytes()

        # Step 2: Kerberos username uniqueness, then the new entry.
        try:
            principal = Principal(body.username, "", self.db.realm)
            self.db.add_principal(
                principal,
                password=body.password,
                now=self.host.clock.now(),
                mod_by="register",
            )
        except PrincipalExists:
            return RegisterReply(
                ok=False, text=f"username {body.username!r} is taken"
            ).to_bytes()
        except (PrincipalError, ValueError) as exc:
            return RegisterReply(ok=False, text=str(exc)).to_bytes()

        self.registrations += 1
        return RegisterReply(ok=True, text=f"welcome, {body.username}").to_bytes()


def register_user(
    host: Host,
    register_address,
    fullname: str,
    mit_id: str,
    username: str,
    password: str,
    port: int = REGISTER_PORT,
) -> str:
    """Client side: what a new user runs at a sign-up workstation."""
    key = _registration_key(mit_id, fullname)
    private = krb_mk_priv(
        RegisterBody(username=username, password=password).to_bytes(),
        key,
        host.address,
        host.clock.now(),
    )
    request = RegisterRequest(
        fullname=fullname, mit_id=mit_id, private_body=private.to_bytes()
    )
    raw = host.rpc(IPAddress(register_address), port, request.to_bytes())
    reply = RegisterReply.from_bytes(raw)
    if not reply.ok:
        raise RuntimeError(f"registration failed: {reply.text}")
    return reply.text
