"""The Hesiod nameserver (paper Section 2.2 and the appendix).

*"Other user information, such as real name, phone number, and so
forth, is kept by another server, the Hesiod nameserver.  This way,
sensitive information, namely passwords, can be handled by Kerberos ...
while the non-sensitive information kept by Hesiod is dealt with
differently; it can, for example, be sent unencrypted over the
network."*

And from the appendix: *"the user's home directory is located by
consulting the Hesiod naming service"* and *"The Hesiod service is also
used to construct an entry in the local password file."*

Deliberately unauthenticated and unencrypted — that is the design point
the paper is making about separating sensitive from non-sensitive data.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.service import Service
from repro.encode import WireStruct, field
from repro.netsim import Host, IPAddress
from repro.netsim.ports import HESIOD_PORT


class HesiodEntry(WireStruct):
    """The passwd-style record Hesiod serves for a user."""

    FIELDS = (
        field("username", "string"),
        field("uid", "u32"),
        field("gids", "list:u32"),
        field("fullname", "string"),
        field("home_server", "string"),   # fileserver hostname
        field("home_path", "string"),     # path on that server
        field("shell", "string"),
    )

    def passwd_line(self) -> str:
        """The /etc/passwd line the login program constructs."""
        gid = self.gids[0] if self.gids else 0
        return (
            f"{self.username}:*:{self.uid}:{gid}:{self.fullname}:"
            f"{self.home_path}:{self.shell}"
        )


class HesiodQuery(WireStruct):
    FIELDS = (field("username", "string"),)


class HesiodReply(WireStruct):
    FIELDS = (field("found", "bool"), field("entry_bytes", "bytes"))


#: Name prefix under which realm→KDC-list records live, the way real
#: Hesiod keeps service records under reserved names.  A query for
#: ``_kerberos.<REALM>`` answers with a :class:`HesiodKdcRecord` —
#: this is the client-discovery channel the realm supervisor re-points
#: after promoting a new master.
KDC_RECORD_PREFIX = "_kerberos."


class HesiodKdcRecord(WireStruct):
    """The KDC list for one realm, current master first."""

    FIELDS = (field("realm", "string"), field("addresses", "list:string"))


class HesiodServer(Service):
    """Serves user directory entries, in the clear."""

    def __init__(self, port: int = HESIOD_PORT) -> None:
        super().__init__()
        self.port = port
        self._entries: Dict[str, HesiodEntry] = {}
        self._kdc_lists: Dict[str, List[str]] = {}
        self.queries = 0

    def ports(self):
        return {self.port: self._handle}

    def add_user(
        self,
        username: str,
        uid: int,
        gids: List[int],
        home_server: str,
        home_path: str,
        fullname: str = "",
        shell: str = "/bin/sh",
    ) -> HesiodEntry:
        entry = HesiodEntry(
            username=username,
            uid=uid,
            gids=list(gids),
            fullname=fullname or username,
            home_server=home_server,
            home_path=home_path,
            shell=shell,
        )
        self._entries[username] = entry
        return entry

    def local_lookup(self, username: str) -> Optional[HesiodEntry]:
        return self._entries.get(username)

    # -- realm KDC records ----------------------------------------------------

    def set_kdc_list(self, realm: str, addresses) -> None:
        """Publish (or replace) the KDC list served for ``realm``.  The
        order is the clients' failover order: current master first."""
        self._kdc_lists[realm] = [str(IPAddress(a)) for a in addresses]

    def kdc_list(self, realm: str) -> List[str]:
        return list(self._kdc_lists.get(realm, []))

    def _handle(self, datagram) -> bytes:
        self.queries += 1
        query = HesiodQuery.from_bytes(datagram.payload)
        if query.username.startswith(KDC_RECORD_PREFIX):
            realm = query.username[len(KDC_RECORD_PREFIX):]
            addresses = self._kdc_lists.get(realm)
            if addresses is None:
                return HesiodReply(found=False, entry_bytes=b"").to_bytes()
            record = HesiodKdcRecord(realm=realm, addresses=list(addresses))
            return HesiodReply(
                found=True, entry_bytes=record.to_bytes()
            ).to_bytes()
        entry = self._entries.get(query.username)
        if entry is None:
            return HesiodReply(found=False, entry_bytes=b"").to_bytes()
        return HesiodReply(found=True, entry_bytes=entry.to_bytes()).to_bytes()


def hesiod_lookup(
    host: Host, hesiod_address, username: str, port: int = HESIOD_PORT
) -> Optional[HesiodEntry]:
    """Client-side query (what the login program runs)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(username=username).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    return HesiodEntry.from_bytes(reply.entry_bytes)


def hesiod_kdcs(
    host: Host, hesiod_address, realm: str, port: int = HESIOD_PORT
) -> Optional[List[IPAddress]]:
    """Client-side KDC discovery: ask Hesiod which KDCs serve ``realm``
    (what a workstation runs at login time, and again when its
    configured KDCs stop answering)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(username=KDC_RECORD_PREFIX + realm).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    record = HesiodKdcRecord.from_bytes(reply.entry_bytes)
    return [IPAddress(a) for a in record.addresses]
