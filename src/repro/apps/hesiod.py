"""The Hesiod nameserver (paper Section 2.2 and the appendix).

*"Other user information, such as real name, phone number, and so
forth, is kept by another server, the Hesiod nameserver.  This way,
sensitive information, namely passwords, can be handled by Kerberos ...
while the non-sensitive information kept by Hesiod is dealt with
differently; it can, for example, be sent unencrypted over the
network."*

And from the appendix: *"the user's home directory is located by
consulting the Hesiod naming service"* and *"The Hesiod service is also
used to construct an entry in the local password file."*

Deliberately unauthenticated and unencrypted — that is the design point
the paper is making about separating sensitive from non-sensitive data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.locator import KdcLocator, count_deprecated
from repro.core.service import Service
from repro.encode import WireStruct, field
from repro.netsim import Host, IPAddress
from repro.netsim.ports import HESIOD_PORT


class HesiodEntry(WireStruct):
    """The passwd-style record Hesiod serves for a user."""

    FIELDS = (
        field("username", "string"),
        field("uid", "u32"),
        field("gids", "list:u32"),
        field("fullname", "string"),
        field("home_server", "string"),   # fileserver hostname
        field("home_path", "string"),     # path on that server
        field("shell", "string"),
    )

    def passwd_line(self) -> str:
        """The /etc/passwd line the login program constructs."""
        gid = self.gids[0] if self.gids else 0
        return (
            f"{self.username}:*:{self.uid}:{gid}:{self.fullname}:"
            f"{self.home_path}:{self.shell}"
        )


class HesiodQuery(WireStruct):
    FIELDS = (field("username", "string"),)


class HesiodReply(WireStruct):
    FIELDS = (field("found", "bool"), field("entry_bytes", "bytes"))


#: Name prefix under which realm→KDC-list records live, the way real
#: Hesiod keeps service records under reserved names.  A query for
#: ``_kerberos.<REALM>`` answers with a :class:`HesiodKdcRecord` —
#: this is the client-discovery channel the realm supervisor re-points
#: after promoting a new master.
KDC_RECORD_PREFIX = "_kerberos."

#: Ring descriptor record for a sharded realm: ``_kerberos-ring.<REALM>``
#: answers with a :class:`HesiodRingRecord` naming the ring epoch and
#: hash-space segments, from which a client builds its routing snapshot.
RING_RECORD_PREFIX = "_kerberos-ring."

#: Per-shard KDC list: ``_kerberos-shard.<N>.<REALM>`` answers with a
#: :class:`HesiodKdcRecord` for shard N (that shard's master first).
SHARD_RECORD_PREFIX = "_kerberos-shard."


class HesiodKdcRecord(WireStruct):
    """The KDC list for one realm, current master first."""

    FIELDS = (field("realm", "string"), field("addresses", "list:string"))


class HesiodRingRecord(WireStruct):
    """A sharded realm's consistent-hash ring, as published through
    Hesiod.  Segments are ``"<start>:<shard>"`` strings: the shard owns
    hash points from ``start`` up to the next segment's start (the last
    wraps around).  Unauthenticated by design, like every Hesiod record
    — a wrong ring costs the client one :class:`WrongShard` referral
    round-trip, never a security property."""

    FIELDS = (
        field("realm", "string"),
        field("epoch", "u64"),
        field("n_shards", "u32"),
        field("segments", "list:string"),
    )


class HesiodServer(Service):
    """Serves user directory entries, in the clear."""

    def __init__(self, port: int = HESIOD_PORT) -> None:
        super().__init__()
        self.port = port
        self._entries: Dict[str, HesiodEntry] = {}
        self._kdc_lists: Dict[str, List[str]] = {}
        #: (realm, shard) -> that shard's KDC list, shard master first.
        self._shard_lists: Dict[Tuple[str, int], List[str]] = {}
        #: realm -> published ring record (sharded realms only).
        self._rings: Dict[str, HesiodRingRecord] = {}
        self.queries = 0

    def ports(self):
        return {self.port: self._handle}

    def add_user(
        self,
        username: str,
        uid: int,
        gids: List[int],
        home_server: str,
        home_path: str,
        fullname: str = "",
        shell: str = "/bin/sh",
    ) -> HesiodEntry:
        entry = HesiodEntry(
            username=username,
            uid=uid,
            gids=list(gids),
            fullname=fullname or username,
            home_server=home_server,
            home_path=home_path,
            shell=shell,
        )
        self._entries[username] = entry
        return entry

    def local_lookup(self, username: str) -> Optional[HesiodEntry]:
        return self._entries.get(username)

    # -- realm KDC records ----------------------------------------------------

    def set_kdc_list(self, realm: str, addresses) -> None:
        """Deprecated shim (one release): publish the flat KDC list for
        ``realm``.  Publication now flows through the realm's locator
        plumbing (:meth:`repro.realm.bootstrap.Realm.attach_hesiod`) —
        direct callers are counted in ``api.deprecated_calls_total``."""
        count_deprecated(
            self.host.network.metrics if self.host is not None else None,
            "HesiodServer.set_kdc_list",
        )
        self.store_kdc_list(realm, addresses)

    def store_kdc_list(self, realm: str, addresses) -> None:
        """Publish (or replace) the KDC list served for ``realm``.  The
        order is the clients' failover order: current master first."""
        self._kdc_lists[realm] = [str(IPAddress(a)) for a in addresses]

    def store_shard_kdc_list(
        self, realm: str, shard: int, addresses
    ) -> None:
        """Publish one shard's KDC list (that shard's master first)."""
        self._shard_lists[(realm, int(shard))] = [
            str(IPAddress(a)) for a in addresses
        ]

    def store_ring(self, record: HesiodRingRecord) -> None:
        """Publish (or replace) a sharded realm's ring descriptor."""
        self._rings[record.realm] = record

    def kdc_list(self, realm: str) -> List[str]:
        return list(self._kdc_lists.get(realm, []))

    def shard_kdc_list(self, realm: str, shard: int) -> List[str]:
        return list(self._shard_lists.get((realm, int(shard)), []))

    def ring_record(self, realm: str) -> Optional[HesiodRingRecord]:
        return self._rings.get(realm)

    def _handle(self, datagram) -> bytes:
        self.queries += 1
        query = HesiodQuery.from_bytes(datagram.payload)
        if query.username.startswith(RING_RECORD_PREFIX):
            record = self._rings.get(query.username[len(RING_RECORD_PREFIX):])
            if record is None:
                return HesiodReply(found=False, entry_bytes=b"").to_bytes()
            return HesiodReply(
                found=True, entry_bytes=record.to_bytes()
            ).to_bytes()
        if query.username.startswith(SHARD_RECORD_PREFIX):
            # "<shard>.<realm>" after the prefix; bad shapes are simply
            # not found (Hesiod never errors, it just doesn't know).
            rest = query.username[len(SHARD_RECORD_PREFIX):]
            shard_str, _, realm = rest.partition(".")
            try:
                shard = int(shard_str)
            except ValueError:
                return HesiodReply(found=False, entry_bytes=b"").to_bytes()
            addresses = self._shard_lists.get((realm, shard))
            if addresses is None:
                return HesiodReply(found=False, entry_bytes=b"").to_bytes()
            record = HesiodKdcRecord(realm=realm, addresses=list(addresses))
            return HesiodReply(
                found=True, entry_bytes=record.to_bytes()
            ).to_bytes()
        if query.username.startswith(KDC_RECORD_PREFIX):
            realm = query.username[len(KDC_RECORD_PREFIX):]
            addresses = self._kdc_lists.get(realm)
            if addresses is None:
                return HesiodReply(found=False, entry_bytes=b"").to_bytes()
            record = HesiodKdcRecord(realm=realm, addresses=list(addresses))
            return HesiodReply(
                found=True, entry_bytes=record.to_bytes()
            ).to_bytes()
        entry = self._entries.get(query.username)
        if entry is None:
            return HesiodReply(found=False, entry_bytes=b"").to_bytes()
        return HesiodReply(found=True, entry_bytes=entry.to_bytes()).to_bytes()


def hesiod_lookup(
    host: Host, hesiod_address, username: str, port: int = HESIOD_PORT
) -> Optional[HesiodEntry]:
    """Client-side query (what the login program runs)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(username=username).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    return HesiodEntry.from_bytes(reply.entry_bytes)


def hesiod_kdcs(
    host: Host, hesiod_address, realm: str, port: int = HESIOD_PORT
) -> Optional[List[IPAddress]]:
    """Client-side KDC discovery: ask Hesiod which KDCs serve ``realm``
    (what a workstation runs at login time, and again when its
    configured KDCs stop answering)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(username=KDC_RECORD_PREFIX + realm).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    record = HesiodKdcRecord.from_bytes(reply.entry_bytes)
    return [IPAddress(a) for a in record.addresses]


def hesiod_ring(
    host: Host, hesiod_address, realm: str, port: int = HESIOD_PORT
) -> Optional[HesiodRingRecord]:
    """Fetch a sharded realm's ring descriptor (None if not sharded)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(username=RING_RECORD_PREFIX + realm).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    return HesiodRingRecord.from_bytes(reply.entry_bytes)


def hesiod_shard_kdcs(
    host: Host, hesiod_address, realm: str, shard: int,
    port: int = HESIOD_PORT,
) -> Optional[List[IPAddress]]:
    """Fetch one shard's KDC list (shard master first)."""
    raw = host.rpc(
        IPAddress(hesiod_address),
        port,
        HesiodQuery(
            username=f"{SHARD_RECORD_PREFIX}{int(shard)}.{realm}"
        ).to_bytes(),
    )
    reply = HesiodReply.from_bytes(raw)
    if not reply.found:
        return None
    record = HesiodKdcRecord.from_bytes(reply.entry_bytes)
    return [IPAddress(a) for a in record.addresses]


class HesiodLocator(KdcLocator):
    """KDC discovery through the realm's Hesiod ``_kerberos`` record.

    The list is fetched lazily on first :meth:`locate` and cached —
    Hesiod is unauthenticated and cheap, but a login should not pay a
    directory round-trip per exchange.  :meth:`refresh` drops the cache
    (what a workstation does when its configured KDCs stop answering,
    or when a referral proves the view stale)."""

    def __init__(
        self, host: Host, hesiod_address, realm: str,
        port: int = HESIOD_PORT,
    ) -> None:
        self._host = host
        self._hesiod = IPAddress(hesiod_address)
        self._realm = realm
        self._port = port
        self._cached: Optional[List[IPAddress]] = None

    def locate(self, routing_key: Optional[str] = None) -> List[IPAddress]:
        if self._cached is None:
            found = hesiod_kdcs(
                self._host, self._hesiod, self._realm, port=self._port
            )
            self._cached = list(found) if found else []
        return list(self._cached)

    def refresh(self) -> None:
        self._cached = None
