"""The common framework for Kerberizing an application (paper Section 6.2).

*"A programmer writing a Kerberos application will often be adding
authentication to an already existing network application consisting of
a client and server side.  We call this process 'Kerberizing' a
program."*

The framework packages the usual shape: the client authenticates once
when the session opens (``krb_mk_req`` / ``krb_rd_req``), then exchanges
application data at one of the paper's three protection levels
(Section 2.1):

* :attr:`Protection.NONE` — "authenticity ... established at the
  initiation of a network connection"; later messages are checked only
  against the session's network address (the level the authenticated
  NFS uses);
* :attr:`Protection.SAFE` — every message authenticated with a keyed
  checksum, content in the clear;
* :attr:`Protection.PRIVATE` — every message authenticated *and*
  encrypted.

Subclass :class:`KerberizedServer` and implement
:meth:`KerberizedServer.handle` to build a service;
:class:`KerberizedChannel` is the client side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.applib import SrvTab, krb_mk_rep, krb_rd_req
from repro.core.client import KerberosClient
from repro.core.errors import KerberosError
from repro.core.messages import ApReply, ApRequest
from repro.core.replay import CLOCK_SKEW, ReplayCache
from repro.core.service import Service
from repro.core.safe_priv import (
    PrivMessage,
    SafeMessage,
    krb_mk_priv,
    krb_mk_safe,
    krb_rd_priv,
    krb_rd_safe,
)
from repro.crypto import DesKey
from repro.encode import DecodeError, WireStruct, field
from repro.netsim import IPAddress
from repro.principal import Principal


class Protection(enum.IntEnum):
    """Section 2.1's three levels of protection."""

    NONE = 0
    SAFE = 1
    PRIVATE = 2


class OpenRequest(WireStruct):
    FIELDS = (
        field("ap_request", "bytes"),
        field("protection", "u8"),
        field("mutual", "bool"),
    )


class OpenReply(WireStruct):
    FIELDS = (
        field("ok", "bool"),
        field("session_id", "u32"),
        field("ap_reply", "bytes"),   # empty unless mutual
        field("text", "string"),
    )


class CallRequest(WireStruct):
    FIELDS = (
        field("session_id", "u32"),
        field("payload", "bytes"),    # wrapped per the session's protection
    )


class CallReply(WireStruct):
    FIELDS = (
        field("ok", "bool"),
        field("payload", "bytes"),
        field("text", "string"),
    )


class _Kind(enum.IntEnum):
    OPEN = 1
    CALL = 2
    CLOSE = 3


def _envelope(kind: _Kind, message: WireStruct) -> bytes:
    return bytes([int(kind)]) + message.to_bytes()


@dataclass
class AppSession:
    """Server-side state for one authenticated connection."""

    session_id: int
    client: Principal
    session_key: DesKey
    address: IPAddress
    protection: Protection


class KerberizedServer(Service):
    """Base class for a Kerberized network service."""

    def __init__(
        self,
        service: Principal,
        srvtab: SrvTab,
        port: int = 0,
        skew: float = CLOCK_SKEW,
    ) -> None:
        super().__init__()
        if not port:
            raise ValueError(f"{type(self).__name__} needs an explicit port")
        self.service = service
        self.srvtab = srvtab
        self.port = port
        self.skew = skew
        self.replay_cache = ReplayCache(window=skew)
        self.sessions: Dict[int, AppSession] = {}
        self._next_session = 1
        self.auth_failures = 0

    def ports(self):
        return {self.port: self._dispatch}

    def on_attach(self) -> None:
        # Third-host observability: handler spans join the propagated
        # trace, and refused authentications land in the audit log.
        self.tracer = self.host.network.tracer
        self.audit = self.host.network.audit
        self.replay_cache.bind_audit(self.audit, self.host.name)

    # -- subclass hooks ------------------------------------------------------

    def handle(self, session: AppSession, data: bytes) -> bytes:
        """Application logic: consume a request, produce a reply."""
        raise NotImplementedError

    def on_open(self, session: AppSession) -> None:
        """Called after a session authenticates (override if needed)."""

    def on_close(self, session: AppSession) -> None:
        """Called when a session closes (override if needed)."""

    # -- wire handling ----------------------------------------------------------

    def _dispatch(self, datagram) -> bytes:
        if not datagram.payload:
            return CallReply(ok=False, payload=b"", text="empty request").to_bytes()
        kind, body = datagram.payload[0], datagram.payload[1:]
        try:
            verb = _Kind(kind).name.lower()
        except ValueError:
            verb = "other"
        with self.tracer.span_under(
            datagram.trace,
            f"app.{verb}",
            host=self.host.name,
            service=str(self.service),
        ):
            try:
                if kind == _Kind.OPEN:
                    return self._handle_open(OpenRequest.from_bytes(body), datagram)
                if kind == _Kind.CALL:
                    return self._handle_call(CallRequest.from_bytes(body), datagram)
                if kind == _Kind.CLOSE:
                    return self._handle_close(CallRequest.from_bytes(body), datagram)
            except DecodeError as exc:
                return CallReply(
                    ok=False, payload=b"", text=f"undecodable request: {exc}"
                ).to_bytes()
            return CallReply(
                ok=False, payload=b"", text="unknown request kind"
            ).to_bytes()

    def _handle_open(self, request: OpenRequest, datagram) -> bytes:
        now = self.host.clock.now()
        try:
            ap_request = ApRequest.from_bytes(request.ap_request)
            context = krb_rd_req(
                request=ap_request,
                service=self.service,
                service_key_or_srvtab=self.srvtab,
                packet_address=datagram.src,
                now=now,
                replay_cache=self.replay_cache,
                skew=self.skew,
            )
        except (KerberosError, DecodeError) as exc:
            self.auth_failures += 1
            self.audit.emit(
                "auth_failure",
                host=self.host.name,
                trace=datagram.trace,
                detail=f"open refused for {self.service}: {exc}",
            )
            return OpenReply(
                ok=False, session_id=0, ap_reply=b"", text=str(exc)
            ).to_bytes()

        session = AppSession(
            session_id=self._next_session,
            client=context.client,
            session_key=context.session_key,
            address=IPAddress(datagram.src),
            protection=Protection(request.protection),
        )
        self._next_session += 1
        self.sessions[session.session_id] = session
        self.on_open(session)

        ap_reply = b""
        if request.mutual:
            ap_reply = krb_mk_rep(context).to_bytes()
        return OpenReply(
            ok=True,
            session_id=session.session_id,
            ap_reply=ap_reply,
            text=f"authenticated as {context.client}",
        ).to_bytes()

    def _session_for(self, request: CallRequest, datagram) -> Optional[AppSession]:
        session = self.sessions.get(request.session_id)
        if session is None:
            return None
        # Level-NONE security still "assume[s] that further messages from
        # a given network address originate from the authenticated party"
        # — so the address is always checked.
        if IPAddress(datagram.src) != session.address:
            return None
        return session

    def _unwrap(self, session: AppSession, payload: bytes, datagram) -> bytes:
        now = self.host.clock.now()
        if session.protection == Protection.NONE:
            return payload
        if session.protection == Protection.SAFE:
            return krb_rd_safe(
                SafeMessage.from_bytes(payload),
                session.session_key,
                expected_sender=session.address,
                now=now,
                skew=self.skew,
            )
        return krb_rd_priv(
            PrivMessage.from_bytes(payload),
            session.session_key,
            expected_sender=session.address,
            now=now,
            skew=self.skew,
        )

    def _wrap(self, session: AppSession, payload: bytes) -> bytes:
        now = self.host.clock.now()
        if session.protection == Protection.NONE:
            return payload
        if session.protection == Protection.SAFE:
            return krb_mk_safe(
                payload, session.session_key, self.host.address, now
            ).to_bytes()
        return krb_mk_priv(
            payload, session.session_key, self.host.address, now
        ).to_bytes()

    def _handle_call(self, request: CallRequest, datagram) -> bytes:
        session = self._session_for(request, datagram)
        if session is None:
            return CallReply(
                ok=False, payload=b"", text="no such session (authenticate first)"
            ).to_bytes()
        try:
            data = self._unwrap(session, request.payload, datagram)
        except (KerberosError, DecodeError) as exc:
            return CallReply(
                ok=False, payload=b"", text=f"message rejected: {exc}"
            ).to_bytes()
        try:
            result = self.handle(session, data)
        except KerberosError as exc:
            return CallReply(ok=False, payload=b"", text=str(exc)).to_bytes()
        return CallReply(
            ok=True, payload=self._wrap(session, result), text=""
        ).to_bytes()

    def _handle_close(self, request: CallRequest, datagram) -> bytes:
        session = self._session_for(request, datagram)
        if session is not None:
            del self.sessions[session.session_id]
            self.on_close(session)
        return CallReply(ok=True, payload=b"", text="closed").to_bytes()


class ChannelError(Exception):
    """The server refused the session or a call."""


class KerberizedChannel:
    """Client side: authenticate once, then call."""

    def __init__(
        self,
        krb: KerberosClient,
        service: Principal,
        server_address,
        port: int,
        protection: Protection = Protection.NONE,
        mutual: bool = False,
    ) -> None:
        self.krb = krb
        self.service = service
        self.server_address = IPAddress(server_address)
        self.port = port
        self.protection = protection
        self.session_id: Optional[int] = None
        self._session_key: Optional[DesKey] = None
        self._open(mutual)

    def _open(self, mutual: bool) -> None:
        ap_request, cred, sent_ts = self.krb.mk_req(self.service, mutual=mutual)
        request = OpenRequest(
            ap_request=ap_request.to_bytes(),
            protection=int(self.protection),
            mutual=mutual,
        )
        raw = self.krb.host.rpc(
            self.server_address, self.port, _envelope(_Kind.OPEN, request)
        )
        reply = OpenReply.from_bytes(raw)
        if not reply.ok:
            raise ChannelError(f"authentication refused: {reply.text}")
        if mutual:
            # Figure 7: verify the server proved knowledge of the session
            # key before trusting anything it says.
            self.krb.rd_rep(ApReply.from_bytes(reply.ap_reply), sent_ts, cred)
        self.session_id = reply.session_id
        self._session_key = cred.session_key

    def call(self, data: bytes) -> bytes:
        if self.session_id is None:
            raise ChannelError("channel is closed")
        now = self.krb._auth_now()
        if self.protection == Protection.NONE:
            payload = data
        elif self.protection == Protection.SAFE:
            payload = krb_mk_safe(
                data, self._session_key, self.krb.host.address, now
            ).to_bytes()
        else:
            payload = krb_mk_priv(
                data, self._session_key, self.krb.host.address, now
            ).to_bytes()
        request = CallRequest(session_id=self.session_id, payload=payload)
        raw = self.krb.host.rpc(
            self.server_address, self.port, _envelope(_Kind.CALL, request)
        )
        reply = CallReply.from_bytes(raw)
        if not reply.ok:
            raise ChannelError(reply.text)
        if self.protection == Protection.NONE:
            return reply.payload
        now = self.krb.host.clock.now()
        if self.protection == Protection.SAFE:
            return krb_rd_safe(
                SafeMessage.from_bytes(reply.payload),
                self._session_key,
                expected_sender=self.server_address,
                now=now,
            )
        return krb_rd_priv(
            PrivMessage.from_bytes(reply.payload),
            self._session_key,
            expected_sender=self.server_address,
            now=now,
        )

    def close(self) -> None:
        if self.session_id is None:
            return
        request = CallRequest(session_id=self.session_id, payload=b"")
        self.krb.host.rpc(
            self.server_address, self.port, _envelope(_Kind.CLOSE, request)
        )
        self.session_id = None
        self._session_key = None
