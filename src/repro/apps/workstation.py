"""The Athena public workstation (paper appendix, first paragraphs).

*"When a user logs in to one of these publicly available workstations,
rather than validate her/his name and password against a locally
resident password file, we use Kerberos to determine her/his
authenticity.  The log-in program prompts for a username ... This
username is used to fetch a Kerberos ticket-granting ticket. ... If
decryption is successful, the user's home directory is located by
consulting the Hesiod naming service and mounted through NFS.  The
log-in program then turns control over to the user's shell ... The
Hesiod service is also used to construct an entry in the local password
file."*

:class:`AthenaWorkstation` performs that whole sequence, and its
``logout`` runs the cleanup path: unmount, invalidate mappings, destroy
tickets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.hesiod import HesiodEntry, hesiod_lookup
from repro.apps.nfs.client import NfsClient
from repro.core.client import KerberosClient
from repro.netsim import Host, IPAddress
from repro.principal import Principal
from repro.user.login import LoginError, LoginSession


@dataclass
class MountedHome:
    """The state of a logged-in user's attached home directory."""

    nfs: NfsClient
    entry: HesiodEntry
    home_path: str


class AthenaWorkstation:
    """A public workstation: login program, local passwd file, NFS client."""

    def __init__(
        self,
        host: Host,
        krb: KerberosClient,
        hesiod_address,
        fileserver_directory: Dict[str, IPAddress],
        mount_service_for: Dict[str, Principal],
    ) -> None:
        """``fileserver_directory`` maps fileserver hostnames (as Hesiod
        names them) to addresses; ``mount_service_for`` maps them to
        their mountd service principals."""
        self.host = host
        self.krb = krb
        self.hesiod_address = IPAddress(hesiod_address)
        self.fileservers = dict(fileserver_directory)
        self.mount_services = dict(mount_service_for)
        self.session = LoginSession(host, krb)
        self.passwd_file: Dict[str, str] = {}  # username -> passwd line
        self.home: Optional[MountedHome] = None

    @property
    def current_user(self) -> Optional[str]:
        return self.session.username

    def login(self, username: str, password: str) -> MountedHome:
        """The full appendix login sequence."""
        # 1. Kerberos instead of a local password file (Figure 5).
        self.session.login(username, password)
        try:
            # 2. "the user's home directory is located by consulting the
            # Hesiod naming service".
            entry = hesiod_lookup(self.host, self.hesiod_address, username)
            if entry is None:
                raise LoginError(f"Hesiod has no entry for {username}")
            server_address = self.fileservers.get(entry.home_server)
            mount_service = self.mount_services.get(entry.home_server)
            if server_address is None or mount_service is None:
                raise LoginError(
                    f"unknown fileserver {entry.home_server!r} for {username}"
                )

            # 3. "...and mounted through NFS" with the Kerberos mapping.
            nfs = NfsClient(
                self.host,
                server_address,
                uid_on_client=entry.uid,
                gids=list(entry.gids),
            )
            nfs.kerberos_mount(self.krb, mount_service)

            # 4. "The Hesiod service is also used to construct an entry in
            # the local password file."
            self.passwd_file[username] = entry.passwd_line()
        except Exception:
            # A failed mount must not leave a half-logged-in session.
            self.session.logout()
            raise

        self.home = MountedHome(nfs=nfs, entry=entry, home_path=entry.home_path)
        return self.home

    def logout(self) -> None:
        """Unmount, invalidate mappings, destroy tickets — leaving nothing
        behind "before the workstation is made available for the next
        user"."""
        if not self.session.logged_in:
            raise LoginError("nobody is logged in")
        username = self.session.username
        if self.home is not None:
            self.home.nfs.logout()   # flush all my mappings on the server
            self.home.nfs.unmount()
            self.home = None
        self.passwd_file.pop(username, None)
        self.session.logout()        # tickets destroyed
