"""Kerberized applications and Athena substrate services (paper Section 7
and the appendix).

*"Several network applications have been modified to use Kerberos"* —
this package contains them, plus the non-Kerberos directory services the
paper mentions:

* :mod:`repro.apps.kerberized` — the common framework for "Kerberizing"
  a client/server application (Section 6.2), offering the three
  protection levels of Section 2.1;
* :mod:`repro.apps.hesiod` — the Hesiod nameserver (non-sensitive user
  information, "sent unencrypted over the network", Section 2.2);
* :mod:`repro.apps.sms` — the Service Management System used by the
  sign-up program;
* :mod:`repro.apps.rlogin` — Kerberized rlogin/rsh with ``.rhosts``
  fallback (Section 7.1);
* :mod:`repro.apps.pop` — the Kerberized Post Office Protocol;
* :mod:`repro.apps.zephyr` — the Zephyr notification service;
* :mod:`repro.apps.register` — the sign-up program combining SMS and
  Kerberos;
* :mod:`repro.apps.nfs` — the appendix's modified Sun NFS with
  mount-time Kerberos authentication and kernel credential mapping;
* :mod:`repro.apps.workstation` — the full Athena public-workstation
  login tying Kerberos, Hesiod, and NFS together.
"""

from repro.apps.kerberized import (
    KerberizedChannel,
    KerberizedServer,
    Protection,
)
from repro.apps.hesiod import HesiodEntry, HesiodServer, hesiod_lookup
from repro.apps.sms import SmsServer, sms_validate
from repro.apps.rlogin import RloginServer, rlogin, rsh
from repro.apps.pop import PopClient, PopServer
from repro.apps.zephyr import ZephyrClient, ZephyrServer
from repro.apps.register import RegisterServer, register_user

__all__ = [
    "HesiodEntry",
    "HesiodServer",
    "KerberizedChannel",
    "KerberizedServer",
    "PopClient",
    "PopServer",
    "Protection",
    "RegisterServer",
    "RloginServer",
    "SmsServer",
    "ZephyrClient",
    "ZephyrServer",
    "hesiod_lookup",
    "register_user",
    "rlogin",
    "rsh",
    "sms_validate",
]
