"""The Service Management System (paper Section 7.1).

*"From SMS, it determines whether the information entered by the
would-be new Athena user, such as name and MIT identification number, is
valid."*  SMS is a substrate for the ``register`` program; it answers
one question — is this (name, MIT id) pair a real affiliate?
"""

from __future__ import annotations

from typing import Dict

from repro.core.service import Service
from repro.encode import WireStruct, field
from repro.netsim import IPAddress
from repro.netsim.ports import SMS_PORT


class SmsQuery(WireStruct):
    FIELDS = (field("fullname", "string"), field("mit_id", "string"))


class SmsReply(WireStruct):
    FIELDS = (field("valid", "bool"), field("text", "string"))


class SmsServer(Service):
    """Registry of valid MIT affiliates."""

    def __init__(self, port: int = SMS_PORT) -> None:
        super().__init__()
        self.port = port
        self._affiliates: Dict[str, str] = {}  # mit_id -> fullname

    def ports(self):
        return {self.port: self._handle}

    def add_affiliate(self, fullname: str, mit_id: str) -> None:
        self._affiliates[mit_id] = fullname

    def _handle(self, datagram) -> bytes:
        query = SmsQuery.from_bytes(datagram.payload)
        fullname = self._affiliates.get(query.mit_id)
        if fullname is None:
            return SmsReply(valid=False, text="unknown MIT id").to_bytes()
        if fullname != query.fullname:
            return SmsReply(valid=False, text="name does not match id").to_bytes()
        return SmsReply(valid=True, text="ok").to_bytes()


def sms_validate(
    host: Host, sms_address, fullname: str, mit_id: str, port: int = SMS_PORT
) -> bool:
    """Client-side validity check (used by the register program)."""
    raw = host.rpc(
        IPAddress(sms_address),
        port,
        SmsQuery(fullname=fullname, mit_id=mit_id).to_bytes(),
    )
    return SmsReply.from_bytes(raw).valid
