"""The Zephyr notification service (paper Section 7.1).

*"A message delivery program, called Zephyr, has been recently developed
at Athena, and it uses Kerberos for authentication as well."*

The property Kerberos buys Zephyr: a notice's *sender* field is the
authenticated principal, not a claim — nobody can send a notice as
someone else.  Notices ride at the SAFE protection level (authenticated,
not secret), matching a campus notification system's needs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.kerberized import (
    KerberizedChannel,
    KerberizedServer,
    Protection,
)
from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.errors import ErrorCode, KerberosError
from repro.encode import WireStruct, field
from repro.netsim.ports import ZEPHYR_PORT
from repro.principal import Principal


class Notice(WireStruct):
    """One Zephyr notice.  ``sender`` is filled in by the *server* from
    the authenticated session — clients cannot choose it."""

    FIELDS = (
        field("sender", "string"),
        field("recipient", "string"),
        field("opcode", "string"),     # e.g. "MESSAGE", "LOGIN"
        field("body", "string"),
    )


class ZephyrServer(KerberizedServer):
    """The zhm/zserver pair collapsed into one notice switchboard."""

    def __init__(
        self,
        service: Principal,
        srvtab: SrvTab,
        port: int = ZEPHYR_PORT,
    ) -> None:
        super().__init__(service, srvtab, port)
        self._queues: Dict[str, List[Notice]] = {}

    def handle(self, session, data: bytes) -> bytes:
        parts = data.decode("utf-8").split("\x00")
        command = parts[0]
        if command == "SEND":
            if len(parts) != 4:
                raise KerberosError(ErrorCode.APP_ERROR, "malformed SEND")
            _, recipient, opcode, body = parts
            notice = Notice(
                # The authenticated identity, not anything the client said.
                sender=str(session.client),
                recipient=recipient,
                opcode=opcode,
                body=body,
            )
            self._queues.setdefault(recipient, []).append(notice)
            return b"ACK"
        if command == "POLL":
            # A user may only read their own queue.
            queue = self._queues.pop(session.client.name, [])
            out = b""
            for notice in queue:
                blob = notice.to_bytes()
                out += len(blob).to_bytes(4, "big") + blob
            return out
        raise KerberosError(ErrorCode.APP_ERROR, f"unknown command {command}")


class ZephyrClient:
    """zwrite/zwgc rolled together."""

    def __init__(
        self,
        krb: KerberosClient,
        service: Principal,
        server_address,
        port: int = ZEPHYR_PORT,
    ) -> None:
        self.channel = KerberizedChannel(
            krb, service, server_address, port, protection=Protection.SAFE
        )

    def zwrite(self, recipient: str, body: str, opcode: str = "MESSAGE") -> None:
        reply = self.channel.call(
            "\x00".join(["SEND", recipient, opcode, body]).encode("utf-8")
        )
        if reply != b"ACK":
            raise RuntimeError(f"zephyr send failed: {reply!r}")

    def poll(self) -> List[Notice]:
        """Fetch and clear this user's pending notices."""
        raw = self.channel.call(b"POLL")
        notices = []
        pos = 0
        while pos < len(raw):
            length = int.from_bytes(raw[pos : pos + 4], "big")
            pos += 4
            notices.append(Notice.from_bytes(raw[pos : pos + length]))
            pos += length
        return notices

    def close(self) -> None:
        self.channel.close()
