"""The NFS server under each of the appendix's three designs.

:class:`AuthMode` selects the world:

* ``TRUSTED`` — unmodified NFS with this workstation trusted: the
  claimed credential is used as-is.  "It is possible from a trusted
  workstation to masquerade as any valid user of the file service
  system" — the threat tests demonstrate exactly that;
* ``UNTRUSTED`` — unmodified NFS, workstation not trusted: every
  request is refused;
* ``MAPPED`` — the shipped hybrid: the kernel map converts
  ⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ per transaction, set up at mount
  time by Kerberos (see :mod:`repro.apps.nfs.mountd`);
* ``KERBEROS_RPC`` — the rejected design: a full Kerberos
  authentication request in *every* NFS transaction ("would have
  delivered unacceptable performance" — benchmarked in exp NFS).
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, Optional, Tuple

from repro.apps.nfs.credmap import CredentialMap, UnmappedPolicy
from repro.apps.nfs.fs import FileSystem, FsError, NfsCredential
from repro.apps.nfs.protocol import NfsOp, NfsReply, NfsRequest
from repro.core.applib import SrvTab, krb_rd_req
from repro.core.errors import KerberosError
from repro.core.messages import ApRequest
from repro.core.replay import ReplayCache
from repro.core.service import Service
from repro.encode import DecodeError
from repro.netsim import Host
from repro.netsim.ports import NFS_PORT
from repro.principal import Principal


class AuthMode(enum.Enum):
    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"
    MAPPED = "mapped"
    KERBEROS_RPC = "kerberos-rpc"


class PasswdMap:
    """username → (uid, gids): the appendix's "special file ... a ndbm
    database file with the username as the key"."""

    def __init__(self) -> None:
        self._users: Dict[str, Tuple[int, Tuple[int, ...]]] = {}

    def add(self, username: str, uid: int, gids) -> None:
        self._users[username] = (int(uid), tuple(int(g) for g in gids))

    def credential_for(self, username: str) -> Optional[NfsCredential]:
        entry = self._users.get(username)
        if entry is None:
            return None
        return NfsCredential(uid=entry[0], gids=entry[1])


class NfsServer(Service):
    """One fileserver, serving its tree under a chosen auth design."""

    def __init__(
        self,
        fs: Optional[FileSystem] = None,
        mode: AuthMode = AuthMode.MAPPED,
        unmapped_policy: UnmappedPolicy = UnmappedPolicy.FRIENDLY,
        service: Optional[Principal] = None,
        srvtab: Optional[SrvTab] = None,
        passwd: Optional[PasswdMap] = None,
        port: int = NFS_PORT,
    ) -> None:
        super().__init__()
        self.fs = fs if fs is not None else FileSystem()
        self.mode = mode
        self.unmapped_policy = unmapped_policy
        self.port = port
        self.passwd = passwd if passwd is not None else PasswdMap()
        # KERBEROS_RPC mode needs the service identity and key.
        self.service = service
        self.srvtab = srvtab

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        host = self.host
        # Counters for the appendix benchmark — all in the network's
        # registry, labelled by server host and auth mode so the three
        # designs can be compared from one snapshot.
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        self.audit = host.network.audit
        self._labels = {"server": host.name, "mode": self.mode.value}
        self.credmap = CredentialMap(
            metrics=self.metrics, labels={"server": host.name}
        )
        self.replay_cache = ReplayCache(
            metrics=self.metrics,
            labels={"server": host.name, "service": "nfs"},
            audit=self.audit,
            host=host.name,
        )
        self.metrics.counter("nfs.access_errors_total", self._labels)
        self.metrics.counter("nfs.kerberos_verifications_total", self._labels)

    # -- registry-backed views of the classic counters --------------------------

    @property
    def ops(self) -> Counter:
        """Per-op request counts, as the familiar Counter shape."""
        out: Counter = Counter()
        for inst in self.metrics.instruments("nfs.rpc_total"):
            labels = inst.labels_dict
            if labels.get("server") == self.host.name and inst.value:
                out[labels["op"]] += int(inst.value)
        return out

    @property
    def access_errors(self) -> int:
        return int(self.metrics.total(
            "nfs.access_errors_total", **self._labels
        ))

    @property
    def kerberos_verifications(self) -> int:
        return int(self.metrics.total(
            "nfs.kerberos_verifications_total", **self._labels
        ))

    # -- credential resolution: the heart of the appendix ----------------------

    def _resolve_credential(
        self, request: NfsRequest, datagram
    ) -> Optional[NfsCredential]:
        """Apply the server's trust design to one request.  Returns None
        for an access error."""
        if self.mode == AuthMode.TRUSTED:
            # "Trusted systems are completely trusted."
            return NfsCredential(
                uid=request.claimed_uid, gids=tuple(request.claimed_gids)
            )

        if self.mode == AuthMode.UNTRUSTED:
            # "Untrusted systems cannot access any files at all."
            return None

        if self.mode == AuthMode.MAPPED:
            # "The CLIENT-IP-ADDRESS is extracted from the NFS request
            # packet and the UID-ON-CLIENT is extracted from the
            # credential supplied by the client system."
            mapped = self.credmap.lookup(datagram.src, request.claimed_uid)
            if mapped is not None:
                return mapped
            if self.unmapped_policy == UnmappedPolicy.FRIENDLY:
                return NfsCredential.nobody()
            return None

        # KERBEROS_RPC: the rejected design — full verification per op.
        if self.service is None or self.srvtab is None:
            return None
        try:
            ap_request = ApRequest.from_bytes(request.ap_request)
            context = krb_rd_req(
                request=ap_request,
                service=self.service,
                service_key_or_srvtab=self.srvtab,
                packet_address=datagram.src,
                now=self.host.clock.now(),
                replay_cache=self.replay_cache,
            )
        except (KerberosError, DecodeError):
            return None
        self.metrics.counter(
            "nfs.kerberos_verifications_total", self._labels
        ).inc()
        return self.passwd.credential_for(context.client.name)

    # -- request handling ------------------------------------------------------------

    def _handle(self, datagram) -> bytes:
        try:
            request = NfsRequest.from_bytes(datagram.payload)
            op = NfsOp(request.op)
        except (DecodeError, ValueError):
            return NfsReply(
                ok=False, data=b"", names=[], text="malformed NFS request"
            ).to_bytes()
        self.metrics.counter(
            "nfs.rpc_total", {**self._labels, "op": op.name}
        ).inc()

        with self.tracer.span_under(
            datagram.trace,
            "nfs.rpc",
            host=self.host.name,
            op=op.name,
            mode=self.mode.value,
        ):
            cred = self._resolve_credential(request, datagram)
            if cred is None:
                self.metrics.counter(
                    "nfs.access_errors_total", self._labels
                ).inc()
                return NfsReply(
                    ok=False, data=b"", names=[], text="NFS access error"
                ).to_bytes()

            try:
                return self._apply(op, request, cred).to_bytes()
            except FsError as exc:
                self.metrics.counter(
                    "nfs.access_errors_total", self._labels
                ).inc()
                return NfsReply(
                    ok=False, data=b"", names=[], text=str(exc)
                ).to_bytes()

    def _apply(self, op: NfsOp, request: NfsRequest, cred: NfsCredential) -> NfsReply:
        fs = self.fs
        if op == NfsOp.GETATTR:
            uid, gid, mode, size = fs.getattr(request.path, cred)
            text = f"{uid}:{gid}:{mode:o}:{size}"
            return NfsReply(ok=True, data=b"", names=[], text=text)
        if op == NfsOp.READ:
            return NfsReply(
                ok=True, data=fs.read(request.path, cred), names=[], text=""
            )
        if op == NfsOp.WRITE:
            n = fs.write(request.path, request.data, cred)
            return NfsReply(ok=True, data=b"", names=[], text=str(n))
        if op == NfsOp.CREATE:
            fs.create(request.path, cred, mode=request.mode or 0o644)
            return NfsReply(ok=True, data=b"", names=[], text="created")
        if op == NfsOp.MKDIR:
            fs.mkdir(request.path, cred, mode=request.mode or 0o755)
            return NfsReply(ok=True, data=b"", names=[], text="created")
        if op == NfsOp.REMOVE:
            fs.remove(request.path, cred)
            return NfsReply(ok=True, data=b"", names=[], text="removed")
        if op == NfsOp.READDIR:
            names = fs.listdir(request.path, cred)
            return NfsReply(ok=True, data=b"", names=names, text="")
        if op == NfsOp.CHMOD:
            fs.chmod(request.path, request.mode, cred)
            return NfsReply(ok=True, data=b"", names=[], text="changed")
        if op == NfsOp.RENAME:
            fs.rename(request.path, request.data.decode("utf-8"), cred)
            return NfsReply(ok=True, data=b"", names=[], text="renamed")
        raise FsError(f"unsupported op {op}")  # pragma: no cover
