"""The NFS server under each of the appendix's three designs.

:class:`~repro.apps.nfs.config.AuthMode` selects the world:

* ``TRUSTED`` — unmodified NFS with this workstation trusted: the
  claimed credential is used as-is.  "It is possible from a trusted
  workstation to masquerade as any valid user of the file service
  system" — the threat tests demonstrate exactly that;
* ``UNTRUSTED`` — unmodified NFS, workstation not trusted: every
  request is refused;
* ``MAPPED`` — the shipped hybrid: the kernel map converts
  ⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ per transaction, set up at mount
  time by Kerberos (see :mod:`repro.apps.nfs.mountd`);
* ``KERBEROS_RPC`` — the rejected design: a full Kerberos
  authentication request in *every* NFS transaction ("would have
  delivered unacceptable performance" — benchmarked in exp NFS).

Since the fleet PR the server is driven by a declarative
:class:`~repro.apps.nfs.config.NfsExportConfig`: auth mode, unmapped
policy, export paths with read-only/squash/client-range options.
:meth:`NfsServer.apply_config` swaps the whole document at runtime —
an auth-mode change flushes the kernel map, since its entries were
authorised under the old design.  The map is volatile kernel state: a
host crash (``on_crash``) loses it, and in-flight clients must recover
through mountd.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Tuple

from repro.apps.nfs.config import AuthMode, ExportSpec, NfsExportConfig, SquashMode
from repro.apps.nfs.credmap import CredentialMap, UnmappedPolicy
from repro.apps.nfs.fs import FileSystem, FsError, NfsCredential
from repro.apps.nfs.protocol import NfsOp, NfsReply, NfsRequest
from repro.core.applib import SrvTab, krb_rd_req
from repro.core.errors import KerberosError
from repro.core.messages import ApRequest
from repro.core.replay import ReplayCache
from repro.core.service import Service
from repro.apps.nfs.passwd import PasswdMap
from repro.encode import DecodeError
from repro.netsim.ports import NFS_PORT
from repro.principal import Principal

#: The error text a client sees when its kernel mapping outlived its
#: ticket or died with a crashed server — the cue to re-mount.
STALE_MAPPING = "stale mapping: re-mount required"

#: Operations that modify the tree — what a read-only export refuses.
WRITE_OPS = frozenset({
    NfsOp.WRITE, NfsOp.CREATE, NfsOp.MKDIR,
    NfsOp.REMOVE, NfsOp.CHMOD, NfsOp.RENAME,
})


class NfsServer(Service):
    """One fileserver, serving its tree under a declarative config."""

    def __init__(
        self,
        fs: Optional[FileSystem] = None,
        mode: Optional[AuthMode] = None,
        unmapped_policy: Optional[UnmappedPolicy] = None,
        service: Optional[Principal] = None,
        srvtab: Optional[SrvTab] = None,
        passwd: Optional[PasswdMap] = None,
        port: int = NFS_PORT,
        config: Optional[NfsExportConfig] = None,
    ) -> None:
        super().__init__()
        self.fs = fs if fs is not None else FileSystem()
        # The classic keyword signature builds a whole-tree config; an
        # explicit config document wins over the shorthand keywords.
        if config is None:
            config = NfsExportConfig(
                auth_mode=mode if mode is not None else AuthMode.MAPPED,
                unmapped_policy=(
                    unmapped_policy if unmapped_policy is not None
                    else UnmappedPolicy.FRIENDLY
                ),
            )
        self.config = config
        self.port = port
        self.passwd = passwd if passwd is not None else PasswdMap()
        # KERBEROS_RPC mode needs the service identity and key.
        self.service = service
        self.srvtab = srvtab

    # -- the declarative view ---------------------------------------------------

    @property
    def mode(self) -> AuthMode:
        return self.config.auth_mode

    @property
    def unmapped_policy(self) -> UnmappedPolicy:
        return self.config.unmapped_policy

    def apply_config(self, config: NfsExportConfig) -> list:
        """Swap the running configuration for a new document (TrueNAS
        config-restore style) and return the change list applied.

        Changing the auth mode flushes the kernel map: every entry in
        it was authorised under the *old* design, and e.g. a
        TRUSTED-era mapping must not survive into a MAPPED world."""
        config.validate()
        changes = self.config.diff(config)
        mode_changed = config.auth_mode != self.config.auth_mode
        self.config = config
        if mode_changed and hasattr(self, "credmap"):
            self.credmap.clear()
        if getattr(self, "host", None) is not None:
            self.metrics.counter(
                "nfs.config_applies_total", {"server": self.host.name}
            ).inc(1)
        return changes

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        host = self.host
        # Counters for the appendix benchmark — all in the network's
        # registry, labelled by server host and auth mode so the three
        # designs can be compared from one snapshot.
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        self.audit = host.network.audit
        self.credmap = CredentialMap(
            metrics=self.metrics, labels={"server": host.name}
        )
        self.replay_cache = ReplayCache(
            metrics=self.metrics,
            labels={"server": host.name, "service": "nfs"},
            audit=self.audit,
            host=host.name,
        )
        self.metrics.counter("nfs.access_errors_total", self._labels)
        self.metrics.counter("nfs.kerberos_verifications_total", self._labels)

    def on_crash(self) -> None:
        """The kernel map and the replay cache are volatile state: a
        crash loses both.  In-flight clients' mappings are gone — they
        recover by re-running the mountd handshake."""
        lost = self.credmap.clear()
        self.replay_cache.purge(float("inf"))
        if lost:
            self.metrics.counter(
                "nfs.map_losses_total", {"server": self.host.name}
            ).inc(lost)

    @property
    def _labels(self) -> dict:
        return {"server": self.host.name, "mode": self.mode.value}

    # -- registry-backed views of the classic counters --------------------------

    @property
    def ops(self) -> Counter:
        """Per-op request counts, as the familiar Counter shape."""
        out: Counter = Counter()
        for inst in self.metrics.instruments("nfs.rpc_total"):
            labels = inst.labels_dict
            if labels.get("server") == self.host.name and inst.value:
                out[labels["op"]] += int(inst.value)
        return out

    @property
    def access_errors(self) -> int:
        return int(self.metrics.total(
            "nfs.access_errors_total", **self._labels
        ))

    @property
    def kerberos_verifications(self) -> int:
        return int(self.metrics.total(
            "nfs.kerberos_verifications_total", **self._labels
        ))

    # -- credential resolution: the heart of the appendix ----------------------

    def _resolve_credential(
        self, request: NfsRequest, datagram, span
    ) -> Tuple[Optional[NfsCredential], str]:
        """Apply the server's trust design to one request.  Returns the
        credential, or ``(None, error-text)`` for a refusal."""
        if self.mode == AuthMode.TRUSTED:
            # "Trusted systems are completely trusted."
            return NfsCredential(
                uid=request.claimed_uid, gids=tuple(request.claimed_gids)
            ), ""

        if self.mode == AuthMode.UNTRUSTED:
            # "Untrusted systems cannot access any files at all."
            return None, "NFS access error"

        if self.mode == AuthMode.MAPPED:
            # "The CLIENT-IP-ADDRESS is extracted from the NFS request
            # packet and the UID-ON-CLIENT is extracted from the
            # credential supplied by the client system."
            mapped, status = self.credmap.resolve(
                datagram.src, request.claimed_uid,
                now=self.host.clock.now(),
            )
            if mapped is not None:
                return mapped, ""
            if status == "expired":
                # The authorising ticket's lifetime is up.  Never serve
                # on a dead authentication — not even as nobody.
                self.metrics.counter(
                    "nfs.stale_mappings_total", {"server": self.host.name}
                ).inc(1)
                return None, STALE_MAPPING
            if self.unmapped_policy == UnmappedPolicy.FRIENDLY:
                return NfsCredential.nobody(), ""
            self.audit.emit(
                "acl_denial",
                host=self.host.name,
                trace=span.trace_id,
                detail=(
                    f"unfriendly refusal: no mapping for "
                    f"<{datagram.src},{request.claimed_uid}>"
                ),
            )
            return None, "NFS access error"

        # KERBEROS_RPC: the rejected design — full verification per op.
        if self.service is None or self.srvtab is None:
            return None, "NFS access error"
        try:
            ap_request = ApRequest.from_bytes(request.ap_request)
            context = krb_rd_req(
                request=ap_request,
                service=self.service,
                service_key_or_srvtab=self.srvtab,
                packet_address=datagram.src,
                now=self.host.clock.now(),
                replay_cache=self.replay_cache,
            )
        except (KerberosError, DecodeError) as exc:
            self.audit.emit(
                "auth_failure",
                host=self.host.name,
                trace=span.trace_id,
                detail=f"per-RPC kerberos verification failed: {exc}",
            )
            return None, "NFS access error"
        self.metrics.counter(
            "nfs.kerberos_verifications_total", self._labels
        ).inc()
        cred = self.passwd.credential_for(context.client.name)
        if cred is None:
            return None, "NFS access error"
        return cred, ""

    # -- request handling ------------------------------------------------------------

    def _deny_export(self, span, reason: str, text: str) -> bytes:
        """Refuse a request on export-policy grounds (not exported, bad
        client range, read-only) — counted and audit-logged."""
        self.metrics.counter(
            "nfs.exports_denied_total",
            {"server": self.host.name, "reason": reason},
        ).inc(1)
        self.audit.emit(
            "acl_denial",
            host=self.host.name,
            trace=span.trace_id,
            detail=f"export policy ({reason}): {text}",
        )
        return NfsReply(ok=False, data=b"", names=[], text=text).to_bytes()

    def _handle(self, datagram) -> bytes:
        try:
            request = NfsRequest.from_bytes(datagram.payload)
            op = NfsOp(request.op)
        except (DecodeError, ValueError):
            return NfsReply(
                ok=False, data=b"", names=[], text="malformed NFS request"
            ).to_bytes()
        self.metrics.counter(
            "nfs.rpc_total", {**self._labels, "op": op.name}
        ).inc()

        with self.tracer.span_under(
            datagram.trace,
            "nfs.rpc",
            host=self.host.name,
            op=op.name,
            mode=self.mode.value,
        ) as span:
            export = self.config.export_for(request.path)
            if export is None:
                return self._deny_export(
                    span, "not_exported",
                    f"{request.path} is not exported",
                )
            if not export.admits(datagram.src):
                return self._deny_export(
                    span, "client_range",
                    f"client {datagram.src} not permitted on {export.path}",
                )
            if export.read_only and op in WRITE_OPS:
                return self._deny_export(
                    span, "read_only",
                    f"read-only export {export.path}",
                )

            cred, error = self._resolve_credential(request, datagram, span)
            if cred is None:
                self.metrics.counter(
                    "nfs.access_errors_total", self._labels
                ).inc()
                return NfsReply(
                    ok=False, data=b"", names=[], text=error
                ).to_bytes()
            cred = self._squash(export, cred)

            try:
                return self._apply(op, request, cred).to_bytes()
            except FsError as exc:
                self.metrics.counter(
                    "nfs.access_errors_total", self._labels
                ).inc()
                return NfsReply(
                    ok=False, data=b"", names=[], text=str(exc)
                ).to_bytes()

    @staticmethod
    def _squash(export: ExportSpec, cred: NfsCredential) -> NfsCredential:
        if export.squash == SquashMode.ALL:
            return NfsCredential.nobody()
        if export.squash == SquashMode.ROOT and cred.is_root:
            return NfsCredential.nobody()
        return cred

    def _apply(self, op: NfsOp, request: NfsRequest, cred: NfsCredential) -> NfsReply:
        fs = self.fs
        if op == NfsOp.GETATTR:
            uid, gid, mode, size = fs.getattr(request.path, cred)
            text = f"{uid}:{gid}:{mode:o}:{size}"
            return NfsReply(ok=True, data=b"", names=[], text=text)
        if op == NfsOp.READ:
            return NfsReply(
                ok=True, data=fs.read(request.path, cred), names=[], text=""
            )
        if op == NfsOp.WRITE:
            n = fs.write(request.path, request.data, cred)
            return NfsReply(ok=True, data=b"", names=[], text=str(n))
        if op == NfsOp.CREATE:
            fs.create(request.path, cred, mode=request.mode or 0o644)
            return NfsReply(ok=True, data=b"", names=[], text="created")
        if op == NfsOp.MKDIR:
            fs.mkdir(request.path, cred, mode=request.mode or 0o755)
            return NfsReply(ok=True, data=b"", names=[], text="created")
        if op == NfsOp.REMOVE:
            fs.remove(request.path, cred)
            return NfsReply(ok=True, data=b"", names=[], text="removed")
        if op == NfsOp.READDIR:
            names = fs.listdir(request.path, cred)
            return NfsReply(ok=True, data=b"", names=names, text="")
        if op == NfsOp.CHMOD:
            fs.chmod(request.path, request.mode, cred)
            return NfsReply(ok=True, data=b"", names=[], text="changed")
        if op == NfsOp.RENAME:
            fs.rename(request.path, request.data.decode("utf-8"), cred)
            return NfsReply(ok=True, data=b"", names=[], text="renamed")
        raise FsError(f"unsupported op {op}")  # pragma: no cover
