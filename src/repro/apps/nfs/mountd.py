"""The modified mount daemon (the appendix).

*"We modified the mount daemon (which handles NFS mount requests on
server systems) to accept a new transaction type, the Kerberos
authentication mapping request.  Basically, as part of the mounting
process, the client system provides a Kerberos authenticator along with
an indication of her/his UID-ON-CLIENT (encrypted in the Kerberos
authenticator) on the workstation.  The server's mount daemon converts
the Kerberos principal name into a local username.  This username is
then looked up in a special file to yield the user's UID and GIDs list.
... From this information, an NFS credential is constructed and handed
to the kernel as the valid mapping of the ⟨CLIENT-IP-ADDRESS,
CLIENT-UID⟩ tuple for this request."*

Mappings installed here carry the authorising ticket's expiry: the
kernel map refuses to serve on a dead authentication, so a ticket
expiring mid-I/O forces the client back through this handshake.  A
failed ``krb_rd_req`` at mount time is a security event — it lands in
the audit log as ``auth_failure``, joined to the request's trace.
"""

from __future__ import annotations

from repro.apps.nfs.protocol import MountOp, MountReply, MountRequest
from repro.apps.nfs.server import NfsServer
from repro.core.applib import SrvTab, krb_rd_req
from repro.core.errors import KerberosError
from repro.core.messages import ApRequest
from repro.core.replay import ReplayCache
from repro.core.service import Service
from repro.encode import DecodeError
from repro.netsim.ports import MOUNTD_PORT
from repro.principal import Principal


class MountDaemon(Service):
    """mountd on a fileserver, wired to that server's kernel map."""

    def __init__(
        self,
        nfs_server: NfsServer,
        service: Principal,
        srvtab: SrvTab,
        port: int = MOUNTD_PORT,
    ) -> None:
        super().__init__()
        self.nfs = nfs_server
        self.service = service
        self.srvtab = srvtab
        self.port = port
        self.replay_cache = ReplayCache()
        self.mappings_installed = 0

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        host = self.host
        self.metrics = host.network.metrics
        self.tracer = host.network.tracer
        self.audit = host.network.audit
        self.replay_cache.bind_audit(self.audit, host.name)
        self._mounts = {
            result: self.metrics.counter(
                "nfs.mounts_total", {"server": host.name, "result": result}
            )
            for result in ("mapped", "denied", "unmapped", "flushed")
        }

    def on_crash(self) -> None:
        # The replay cache is volatile; the kernel map it feeds belongs
        # to the NfsServer, which clears it in its own crash hook.
        self.replay_cache.purge(float("inf"))

    def _handle(self, datagram) -> bytes:
        try:
            request = MountRequest.from_bytes(datagram.payload)
            op = MountOp(request.op)
        except (DecodeError, ValueError):
            return MountReply(ok=False, text="malformed mount request").to_bytes()

        with self.tracer.span_under(
            datagram.trace, "nfs.mountd",
            host=self.host.name, op=op.name,
        ) as span:
            if op == MountOp.MAP:
                return self._handle_map(request, datagram, span)
            if op == MountOp.UNMAP:
                # "At unmount time a request is sent to the mount daemon to
                # remove the previously added mapping."  Scoped to the
                # requesting address: you can only unmap your own machine.
                removed = self.nfs.credmap.delete(
                    datagram.src, request.uid_on_client
                )
                self._mounts["unmapped"].inc(1 if removed else 0)
                return MountReply(
                    ok=removed, text="unmapped" if removed else "no such mapping"
                ).to_bytes()
            if op == MountOp.LOGOUT:
                # "invalidate all mapping for the current user on the server
                # in question, thus cleaning up any remaining mappings."
                mapped = self.nfs.credmap.lookup(
                    datagram.src, request.uid_on_client,
                    now=self.host.clock.now(),
                )
                count = 0
                if mapped is not None:
                    count = self.nfs.credmap.flush_uid(mapped.uid)
                self._mounts["flushed"].inc(count)
                return MountReply(
                    ok=True, text=f"flushed {count} mappings"
                ).to_bytes()
            return MountReply(ok=False, text="unknown op").to_bytes()  # pragma: no cover

    def _handle_map(self, request: MountRequest, datagram, span) -> bytes:
        """The Kerberos authentication mapping request."""
        try:
            ap_request = ApRequest.from_bytes(request.ap_request)
            context = krb_rd_req(
                request=ap_request,
                service=self.service,
                service_key_or_srvtab=self.srvtab,
                packet_address=datagram.src,
                now=self.host.clock.now(),
                replay_cache=self.replay_cache,
            )
        except (KerberosError, DecodeError) as exc:
            self.audit.emit(
                "auth_failure",
                host=self.host.name,
                trace=span.trace_id,
                detail=f"mount-time krb_rd_req failed: {exc}",
            )
            self._mounts["denied"].inc(1)
            return MountReply(ok=False, text=f"authentication failed: {exc}").to_bytes()

        # The UID-ON-CLIENT arrives sealed inside the authenticator (its
        # checksum field), so it cannot be tampered with in transit.
        uid_on_client = context.checksum

        # "converts the Kerberos principal name into a local username"
        # (the primary name) and looks it up in the passwd map.
        server_cred = self.nfs.passwd.credential_for(context.client.name)
        if server_cred is None:
            self.audit.emit(
                "acl_denial",
                host=self.host.name,
                principal=str(context.client),
                trace=span.trace_id,
                detail=f"no local account for {context.client.name}",
            )
            self._mounts["denied"].inc(1)
            return MountReply(
                ok=False,
                text=f"no local account for {context.client.name}",
            ).to_bytes()

        # The mapping lives exactly as long as the ticket that earned it.
        self.nfs.credmap.add(
            datagram.src, uid_on_client, server_cred,
            expires=context.ticket.expires,
        )
        self.mappings_installed += 1
        self._mounts["mapped"].inc(1)
        return MountReply(
            ok=True,
            text=(
                f"mapped <{context.address},{uid_on_client}> -> "
                f"uid {server_cred.uid}"
            ),
        ).to_bytes()
