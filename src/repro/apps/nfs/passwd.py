"""The fileserver's username → credential database (the appendix).

*"This username is then looked up in a special file ... a ndbm database
file with the username as the key"* — yielding the user's UID and GIDs
list, from which mountd constructs the NFS credential it hands to the
kernel map.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.nfs.fs import NfsCredential


class PasswdMap:
    """username → (uid, gids): the appendix's "special file"."""

    def __init__(self) -> None:
        self._users: Dict[str, Tuple[int, Tuple[int, ...]]] = {}

    def add(self, username: str, uid: int, gids) -> None:
        self._users[username] = (int(uid), tuple(int(g) for g in gids))

    def credential_for(self, username: str) -> Optional[NfsCredential]:
        entry = self._users.get(username)
        if entry is None:
            return None
        return NfsCredential(uid=entry[0], gids=entry[1])
