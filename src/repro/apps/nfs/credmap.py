"""The kernel-resident credential mapping (the appendix's core design).

*"The basic idea is to have the NFS server map credentials received from
client workstations, to a valid (and possibly different) credential on
the server system.  This mapping is performed in the server's kernel on
each NFS transaction and is setup at 'mount' time ...

The basic mapping function maps the tuple
⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ to a valid NFS credential on the
server system. ... Our new system call is used to add and delete entries
from the kernel resident map.  It also provides the ability to flush all
entries that map to a specific UID on the server system, or flush all
entries from a given CLIENT-IP-ADDRESS."*

:class:`CredentialMap` is that kernel table, and its methods are that
system call.  The two configurations for unmapped requests are modelled
by :class:`UnmappedPolicy`:

*"In our friendly configuration we default the unmappable requests into
the credentials for the user 'nobody' ...  Unfriendly servers return an
NFS access error when no valid mapping can be found."*

Entries may carry an expiry (the Kerberos ticket lifetime that
authorised them): a mapping outliving its ticket would be an
authentication that never ends, so :meth:`resolve` reports such entries
as ``"expired"`` and purges them — the client must re-run the mount
handshake.  The table is volatile kernel state: :meth:`clear` models a
server crash losing the whole map.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Tuple

from repro.apps.nfs.fs import NfsCredential
from repro.netsim import IPAddress
from repro.obs import MetricsRegistry


class UnmappedPolicy(enum.Enum):
    FRIENDLY = "friendly"       # unmapped -> nobody
    UNFRIENDLY = "unfriendly"   # unmapped -> access error


class CredentialMap:
    """⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ → server credential.

    Lookups count into ``credmap.lookups_total{result="hit"|"miss"|
    "expired"}`` — the per-transaction cost of the appendix's shipped
    design.  Without a registry (standalone use in tests) a private one
    is created, keeping the counters the single source of truth either
    way.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._map: Dict[Tuple[IPAddress, int], NfsCredential] = {}
        self._expiry: Dict[Tuple[IPAddress, int], float] = {}
        base = dict(labels or {})
        registry = metrics if metrics is not None else MetricsRegistry()
        self._hit = registry.counter(
            "credmap.lookups_total", {**base, "result": "hit"}
        )
        self._miss = registry.counter(
            "credmap.lookups_total", {**base, "result": "miss"}
        )
        self._expired = registry.counter(
            "credmap.lookups_total", {**base, "result": "expired"}
        )

    @property
    def lookups(self) -> int:
        """Total per-transaction lookups, whatever their result."""
        return int(
            self._hit.value + self._miss.value + self._expired.value
        )

    # -- the new system call's operations -------------------------------------

    def add(
        self,
        client_addr,
        uid_on_client: int,
        server_cred: NfsCredential,
        expires: Optional[float] = None,
    ) -> None:
        """Install a mapping (done by mountd after Kerberos succeeds).
        ``expires`` bounds its life to the authorising ticket's."""
        key = (IPAddress(client_addr), int(uid_on_client))
        self._map[key] = server_cred
        if expires is None:
            self._expiry.pop(key, None)
        else:
            self._expiry[key] = float(expires)

    def delete(self, client_addr, uid_on_client: int) -> bool:
        """Remove one mapping (unmount time)."""
        key = (IPAddress(client_addr), int(uid_on_client))
        self._expiry.pop(key, None)
        return self._map.pop(key, None) is not None

    def flush_uid(self, server_uid: int) -> int:
        """Flush all entries that map *to* a given server UID (log-out
        time cleanup); returns how many were removed."""
        doomed = [k for k, v in self._map.items() if v.uid == server_uid]
        for key in doomed:
            del self._map[key]
            self._expiry.pop(key, None)
        return len(doomed)

    def flush_address(self, client_addr) -> int:
        """Flush all entries from a given CLIENT-IP-ADDRESS (e.g. when a
        workstation is re-purposed); returns how many were removed."""
        addr = IPAddress(client_addr)
        doomed = [k for k in self._map if k[0] == addr]
        for key in doomed:
            del self._map[key]
            self._expiry.pop(key, None)
        return len(doomed)

    def clear(self) -> int:
        """Drop every entry — the kernel map is volatile state, and this
        is a crash losing it; returns how many entries died."""
        count = len(self._map)
        self._map.clear()
        self._expiry.clear()
        return count

    # -- the per-transaction lookup ----------------------------------------------

    def resolve(
        self, client_addr, uid_on_client: int, now: Optional[float] = None
    ) -> Tuple[Optional[NfsCredential], str]:
        """The hot path with its verdict: ``(credential, status)`` where
        status is ``"hit"``, ``"miss"``, or ``"expired"``.  An expired
        entry (its authorising ticket's lifetime is up) is purged and
        never served — the client must re-mount.  Note: per the
        appendix, "all information in the client-generated credential
        except the UID-ON-CLIENT is discarded" — the GIDs the client
        claims are never consulted."""
        key = (IPAddress(client_addr), int(uid_on_client))
        cred = self._map.get(key)
        if cred is None:
            self._miss.inc()
            return None, "miss"
        expires = self._expiry.get(key)
        if expires is not None and now is not None and now >= expires:
            del self._map[key]
            del self._expiry[key]
            self._expired.inc()
            return None, "expired"
        self._hit.inc()
        return cred, "hit"

    def lookup(
        self, client_addr, uid_on_client: int, now: Optional[float] = None
    ) -> Optional[NfsCredential]:
        """The classic system-call view of :meth:`resolve`."""
        cred, _status = self.resolve(client_addr, uid_on_client, now=now)
        return cred

    # -- inspection (conformance tests assert full table state) -----------------

    def entries(self) -> Dict[Tuple[str, int], NfsCredential]:
        """A snapshot of the whole table, keyed by (address-string, uid)."""
        return {
            (str(addr), uid): cred
            for (addr, uid), cred in self._map.items()
        }

    def expiry_of(self, client_addr, uid_on_client: int) -> Optional[float]:
        return self._expiry.get((IPAddress(client_addr), int(uid_on_client)))

    def __len__(self) -> int:
        return len(self._map)
