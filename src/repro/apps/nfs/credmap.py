"""The kernel-resident credential mapping (the appendix's core design).

*"The basic idea is to have the NFS server map credentials received from
client workstations, to a valid (and possibly different) credential on
the server system.  This mapping is performed in the server's kernel on
each NFS transaction and is setup at 'mount' time ...

The basic mapping function maps the tuple
⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ to a valid NFS credential on the
server system. ... Our new system call is used to add and delete entries
from the kernel resident map.  It also provides the ability to flush all
entries that map to a specific UID on the server system, or flush all
entries from a given CLIENT-IP-ADDRESS."*

:class:`CredentialMap` is that kernel table, and its methods are that
system call.  The two configurations for unmapped requests are modelled
by :class:`UnmappedPolicy`:

*"In our friendly configuration we default the unmappable requests into
the credentials for the user 'nobody' ...  Unfriendly servers return an
NFS access error when no valid mapping can be found."*
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Tuple

from repro.apps.nfs.fs import NfsCredential
from repro.netsim import IPAddress
from repro.obs import MetricsRegistry


class UnmappedPolicy(enum.Enum):
    FRIENDLY = "friendly"       # unmapped -> nobody
    UNFRIENDLY = "unfriendly"   # unmapped -> access error


class CredentialMap:
    """⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ → server credential.

    Lookups count into ``credmap.lookups_total{result="hit"|"miss"}`` —
    the per-transaction cost of the appendix's shipped design.  Without a
    registry (standalone use in tests) a private one is created, keeping
    the counters the single source of truth either way.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._map: Dict[Tuple[IPAddress, int], NfsCredential] = {}
        base = dict(labels or {})
        registry = metrics if metrics is not None else MetricsRegistry()
        self._hit = registry.counter(
            "credmap.lookups_total", {**base, "result": "hit"}
        )
        self._miss = registry.counter(
            "credmap.lookups_total", {**base, "result": "miss"}
        )

    @property
    def lookups(self) -> int:
        """Total per-transaction lookups, hit or miss."""
        return int(self._hit.value + self._miss.value)

    # -- the new system call's operations -------------------------------------

    def add(
        self, client_addr, uid_on_client: int, server_cred: NfsCredential
    ) -> None:
        """Install a mapping (done by mountd after Kerberos succeeds)."""
        self._map[(IPAddress(client_addr), int(uid_on_client))] = server_cred

    def delete(self, client_addr, uid_on_client: int) -> bool:
        """Remove one mapping (unmount time)."""
        return self._map.pop((IPAddress(client_addr), int(uid_on_client)), None) is not None

    def flush_uid(self, server_uid: int) -> int:
        """Flush all entries that map *to* a given server UID (log-out
        time cleanup); returns how many were removed."""
        doomed = [k for k, v in self._map.items() if v.uid == server_uid]
        for key in doomed:
            del self._map[key]
        return len(doomed)

    def flush_address(self, client_addr) -> int:
        """Flush all entries from a given CLIENT-IP-ADDRESS (e.g. when a
        workstation is re-purposed); returns how many were removed."""
        addr = IPAddress(client_addr)
        doomed = [k for k in self._map if k[0] == addr]
        for key in doomed:
            del self._map[key]
        return len(doomed)

    # -- the per-transaction lookup ----------------------------------------------

    def lookup(
        self, client_addr, uid_on_client: int
    ) -> Optional[NfsCredential]:
        """The hot path, run "in the server's kernel on each NFS
        transaction".  Note: per the appendix, "all information in the
        client-generated credential except the UID-ON-CLIENT is
        discarded" — the GIDs the client claims are never consulted."""
        cred = self._map.get((IPAddress(client_addr), int(uid_on_client)))
        (self._miss if cred is None else self._hit).inc()
        return cred

    def __len__(self) -> int:
        return len(self._map)
