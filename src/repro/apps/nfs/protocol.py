"""NFS wire messages for the appendix reproduction.

One request shape serves all server modes.  ``claimed_uid``/
``claimed_gids`` are the unmodified-NFS credential that rides "in each
NFS request"; ``ap_request`` is empty except in the rejected
full-Kerberos-per-RPC design, where every transaction carries a complete
authentication request.
"""

from __future__ import annotations

import enum

from repro.encode import WireStruct, field


class NfsOp(enum.IntEnum):
    GETATTR = 1
    READ = 2
    WRITE = 3
    CREATE = 4
    MKDIR = 5
    REMOVE = 6
    READDIR = 7
    CHMOD = 8
    RENAME = 9   # data field carries the destination path


class NfsRequest(WireStruct):
    FIELDS = (
        field("op", "u8"),
        field("path", "string"),
        field("data", "bytes"),
        field("mode", "u16"),
        field("claimed_uid", "u32"),
        field("claimed_gids", "list:u32"),
        field("ap_request", "bytes"),   # per-RPC Kerberos mode only
    )


class NfsReply(WireStruct):
    FIELDS = (
        field("ok", "bool"),
        field("data", "bytes"),
        field("names", "list:string"),
        field("text", "string"),
    )


class MountOp(enum.IntEnum):
    MAP = 1        # the new Kerberos authentication mapping request
    UNMAP = 2      # unmount: remove this mapping
    LOGOUT = 3     # invalidate all mappings for this user


class MountRequest(WireStruct):
    """To the modified mount daemon.  For MAP, the UID-ON-CLIENT rides
    *inside* the sealed authenticator (its checksum field), per the
    appendix: "an indication of her/his UID-ON-CLIENT (encrypted in the
    Kerberos authenticator)"."""

    FIELDS = (
        field("op", "u8"),
        field("ap_request", "bytes"),   # MAP only
        field("uid_on_client", "u32"),  # UNMAP / LOGOUT (cleartext is fine:
                                        # removing one's own mapping only)
    )


class MountReply(WireStruct):
    FIELDS = (field("ok", "bool"), field("text", "string"))
