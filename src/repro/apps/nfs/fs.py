"""A Unix-flavoured filesystem substrate for the NFS appendix.

The paper's fileservers are "a set of computers (currently VAX 11/750s)
... dedicated to this purpose" holding every user's home directory.
This module is that storage: a tree of nodes with owner/group/mode
permission bits, checked against an :class:`NfsCredential` — the
"credential" in NFS terminology, "information about the unique user
identifier (UID) of the requester and a list of the group identifiers
(GIDs) of the requester's membership".
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

#: The appendix's anonymous user: "we default the unmappable requests
#: into the credentials for the user 'nobody' who has no privileged
#: access and has a unique UID."
NOBODY_UID = 65534
ROOT_UID = 0

# Permission bit masks (classic Unix rwxrwxrwx).
R, W, X = 4, 2, 1


class FsError(Exception):
    """Filesystem failure: missing path, permission denied, bad op."""


@dataclass(frozen=True)
class NfsCredential:
    """An NFS credential: UID plus group list."""

    uid: int
    gids: Tuple[int, ...] = ()

    @classmethod
    def nobody(cls) -> "NfsCredential":
        return cls(uid=NOBODY_UID, gids=())

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID


@dataclass
class Node:
    """One file or directory."""

    name: str
    is_dir: bool
    owner_uid: int
    group_gid: int
    mode: int                      # 0oXYZ: owner/group/other rwx
    data: bytes = b""
    children: Dict[str, "Node"] = dc_field(default_factory=dict)

    def permits(self, cred: NfsCredential, want: int) -> bool:
        """Classic Unix check.  Only files owned by root are exempt from
        root's reach in the appendix's threat discussion; here root on
        the *server* is all-powerful, as on a real fileserver."""
        if cred.is_root:
            return True
        if cred.uid == self.owner_uid:
            bits = (self.mode >> 6) & 7
        elif self.group_gid in cred.gids:
            bits = (self.mode >> 3) & 7
        else:
            bits = self.mode & 7
        return (bits & want) == want


class FileSystem:
    """The exported tree."""

    def __init__(self) -> None:
        self.root = Node(
            name="/", is_dir=True, owner_uid=ROOT_UID, group_gid=0, mode=0o755
        )

    # -- path plumbing -----------------------------------------------------

    @staticmethod
    def _parts(path: str) -> List[str]:
        if not path.startswith("/"):
            raise FsError(f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _resolve(self, path: str, cred: Optional[NfsCredential] = None) -> Node:
        """Walk the path; with a credential, enforce search (execute)
        permission on every directory traversed, as Unix does — this is
        what makes a 0700 home directory actually private."""
        node = self.root
        for part in self._parts(path):
            if not node.is_dir:
                raise FsError(f"{part!r} reached through a non-directory")
            if cred is not None and not node.permits(cred, X):
                raise FsError(f"permission denied traversing to {path}")
            child = node.children.get(part)
            if child is None:
                raise FsError(f"no such file or directory: {path}")
            node = child
        return node

    def _resolve_parent(
        self, path: str, cred: Optional[NfsCredential] = None
    ) -> Tuple[Node, str]:
        parts = self._parts(path)
        if not parts:
            raise FsError("cannot operate on the root this way")
        parent = self.root
        for part in parts[:-1]:
            if cred is not None and not parent.permits(cred, X):
                raise FsError(f"permission denied traversing to {path}")
            child = parent.children.get(part)
            if child is None or not child.is_dir:
                raise FsError(f"no such directory on the way to {path}")
            parent = child
        if cred is not None and not parent.permits(cred, X):
            raise FsError(f"permission denied traversing to {path}")
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except FsError:
            return False

    # -- operations (each checked against a credential) -----------------------

    def mkdir(
        self, path: str, cred: NfsCredential, mode: int = 0o755
    ) -> None:
        parent, name = self._resolve_parent(path, cred)
        if name in parent.children:
            raise FsError(f"{path} already exists")
        if not parent.permits(cred, W):
            raise FsError(f"permission denied creating {path}")
        gid = cred.gids[0] if cred.gids else 0
        parent.children[name] = Node(
            name=name, is_dir=True, owner_uid=cred.uid, group_gid=gid, mode=mode
        )

    def create(
        self, path: str, cred: NfsCredential, mode: int = 0o644
    ) -> None:
        parent, name = self._resolve_parent(path, cred)
        if name in parent.children:
            raise FsError(f"{path} already exists")
        if not parent.permits(cred, W):
            raise FsError(f"permission denied creating {path}")
        gid = cred.gids[0] if cred.gids else 0
        parent.children[name] = Node(
            name=name, is_dir=False, owner_uid=cred.uid, group_gid=gid, mode=mode
        )

    def read(self, path: str, cred: NfsCredential) -> bytes:
        node = self._resolve(path, cred)
        if node.is_dir:
            raise FsError(f"{path} is a directory")
        if not node.permits(cred, R):
            raise FsError(f"permission denied reading {path}")
        return node.data

    def write(self, path: str, data: bytes, cred: NfsCredential) -> int:
        node = self._resolve(path, cred)
        if node.is_dir:
            raise FsError(f"{path} is a directory")
        if not node.permits(cred, W):
            raise FsError(f"permission denied writing {path}")
        node.data = bytes(data)
        return len(node.data)

    def listdir(self, path: str, cred: NfsCredential) -> List[str]:
        node = self._resolve(path, cred)
        if not node.is_dir:
            raise FsError(f"{path} is not a directory")
        if not node.permits(cred, R):
            raise FsError(f"permission denied listing {path}")
        return sorted(node.children)

    def getattr(self, path: str, cred: NfsCredential) -> Tuple[int, int, int, int]:
        """Return (owner_uid, group_gid, mode, size); needs no permission
        beyond path traversal, like real NFS GETATTR."""
        node = self._resolve(path, cred)
        return (node.owner_uid, node.group_gid, node.mode, len(node.data))

    def remove(self, path: str, cred: NfsCredential) -> None:
        parent, name = self._resolve_parent(path, cred)
        if name not in parent.children:
            raise FsError(f"no such file or directory: {path}")
        if not parent.permits(cred, W):
            raise FsError(f"permission denied removing {path}")
        del parent.children[name]

    def rename(self, old: str, new: str, cred: NfsCredential) -> None:
        """Move a file or directory; needs write permission on both the
        source and destination parents (classic Unix)."""
        src_parent, src_name = self._resolve_parent(old, cred)
        if src_name not in src_parent.children:
            raise FsError(f"no such file or directory: {old}")
        dst_parent, dst_name = self._resolve_parent(new, cred)
        if dst_name in dst_parent.children:
            raise FsError(f"{new} already exists")
        if not src_parent.permits(cred, W) or not dst_parent.permits(cred, W):
            raise FsError(f"permission denied renaming {old} to {new}")
        node = src_parent.children.pop(src_name)
        node.name = dst_name
        dst_parent.children[dst_name] = node

    def chmod(self, path: str, mode: int, cred: NfsCredential) -> None:
        node = self._resolve(path, cred)
        if not cred.is_root and cred.uid != node.owner_uid:
            raise FsError(f"only the owner may chmod {path}")
        node.mode = mode

    # -- convenience for building home directories ------------------------------

    def install_home(self, username: str, uid: int, gid: int) -> str:
        """Create /u/<username> owned by uid, mode 0700 (private storage,
        as the appendix's home directories are)."""
        root_cred = NfsCredential(uid=ROOT_UID)
        if not self.exists("/u"):
            self.mkdir("/u", root_cred)
        home = f"/u/{username}"
        self.mkdir(home, root_cred)
        node = self._resolve(home)
        node.owner_uid = uid
        node.group_gid = gid
        node.mode = 0o700
        return home
