"""Kerberized Sun NFS — the paper's appendix case study.

The appendix describes three worlds, all buildable here:

1. **Unmodified NFS** — a credential (UID + GIDs) rides in every
   request and the server either trusts the workstation completely or
   not at all; a "trusted" workstation can masquerade as any user;
2. **Full per-RPC Kerberos** — the design the authors *rejected*:
   "Including a Kerberos authentication on each disk transaction would
   add a fair number of full-blown encryptions (done in software) per
   transaction and ... would have delivered unacceptable performance";
3. **The hybrid they shipped** — Kerberos authentication *once, at
   mount time*, establishing a kernel-resident mapping from
   ⟨CLIENT-IP-ADDRESS, UID-ON-CLIENT⟩ to a server credential, consulted
   on every transaction at hash-lookup cost.

Modules: :mod:`fs` (the filesystem substrate),
:mod:`credmap` (the kernel mapping table and its "new system call"),
:mod:`config` (the declarative export configuration),
:mod:`passwd` (the username → credential database),
:mod:`server` (the NFS server under each policy),
:mod:`mountd` (the modified mount daemon),
:mod:`client` (the workstation side).
"""

from repro.apps.nfs.config import (
    AuthMode,
    ClientRange,
    ConfigError,
    ExportSpec,
    NfsExportConfig,
    SquashMode,
)
from repro.apps.nfs.credmap import CredentialMap, UnmappedPolicy
from repro.apps.nfs.fs import FileSystem, FsError, NfsCredential
from repro.apps.nfs.mountd import MountDaemon
from repro.apps.nfs.client import NfsClient, NfsClientError
from repro.apps.nfs.passwd import PasswdMap
from repro.apps.nfs.server import NfsServer, STALE_MAPPING

__all__ = [
    "AuthMode",
    "ClientRange",
    "ConfigError",
    "CredentialMap",
    "ExportSpec",
    "FileSystem",
    "FsError",
    "MountDaemon",
    "NfsClient",
    "NfsClientError",
    "NfsCredential",
    "NfsExportConfig",
    "NfsServer",
    "PasswdMap",
    "STALE_MAPPING",
    "SquashMode",
    "UnmappedPolicy",
]
