"""The workstation side of NFS (the appendix).

Covers both the mount-time Kerberos handshake (the shipped design) and
a per-RPC-Kerberos mode for reproducing the performance comparison that
justified rejecting it.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.apps.nfs.protocol import (
    MountOp,
    MountReply,
    MountRequest,
    NfsOp,
    NfsReply,
    NfsRequest,
)
from repro.core.client import KerberosClient
from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.netsim import Host, IPAddress, Unreachable
from repro.netsim.ports import MOUNTD_PORT, NFS_PORT
from repro.principal import Principal


class NfsClientError(Exception):
    """An NFS or mountd request failed."""


class NfsClient:
    """One workstation's connection to one fileserver."""

    def __init__(
        self,
        host: Host,
        server_address,
        uid_on_client: int,
        gids: Optional[List[int]] = None,
        nfs_port: int = NFS_PORT,
        mountd_port: int = MOUNTD_PORT,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.server_address = IPAddress(server_address)
        self.uid_on_client = int(uid_on_client)
        self.gids = list(gids) if gids else []
        self.nfs_port = nfs_port
        self.mountd_port = mountd_port
        #: None keeps the legacy single-attempt behaviour; a policy adds
        #: retransmission (requests are rebuilt per attempt, so any
        #: embedded authenticator is fresh and replay-cache-safe).
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(f"nfs:{host.name}")
        # Per-RPC Kerberos mode state (the rejected design).
        self._per_rpc_krb: Optional[KerberosClient] = None
        self._per_rpc_service: Optional[Principal] = None
        #: Optional recovery hook: when a request is refused in a way
        #: that smells like a lost/expired kernel mapping, call this
        #: (it should redo the mount handshake) and retry the op once.
        self._remount: Optional[Callable[[], object]] = None

    def _rpc_with_retries(
        self, port: int, build_payload: Callable[[], bytes], op: str
    ) -> bytes:
        """One send-and-wait exchange under the retry policy; the payload
        is rebuilt fresh for every attempt."""
        if self.retry_policy is None:
            return self.host.rpc(self.server_address, port, build_payload())
        try:
            raw, _, _ = run_with_failover(
                self.retry_policy,
                self.host.clock,
                [self.server_address],
                lambda address: self.host.rpc(address, port, build_payload()),
                rng=self._retry_rng,
                metrics=self.host.network.metrics,
                op=op,
                retry_on=(Unreachable,),
            )
        except RetryExhausted as exc:
            raise Unreachable(
                f"{op} at {self.server_address}:{port} unreachable after "
                f"{exc.attempts} attempt(s): {exc.last_error}"
            ) from exc
        return raw

    # -- mount-time Kerberos (the shipped hybrid) --------------------------

    def kerberos_mount(
        self, krb: KerberosClient, mount_service: Principal
    ) -> str:
        """Send the Kerberos authentication mapping request: an
        authenticator with our UID-ON-CLIENT sealed inside it.  Each
        retransmission carries a *fresh* authenticator — mountd keeps a
        replay cache, so a verbatim resend after a lost reply would be
        rejected."""

        def build() -> bytes:
            ap_request, _, _ = krb.mk_req(
                mount_service, checksum=self.uid_on_client
            )
            return MountRequest(
                op=int(MountOp.MAP),
                ap_request=ap_request.to_bytes(),
                uid_on_client=0,
            ).to_bytes()

        raw = self._rpc_with_retries(self.mountd_port, build, op="mountd")
        reply = MountReply.from_bytes(raw)
        if not reply.ok:
            raise NfsClientError(f"mount failed: {reply.text}")
        return reply.text

    def unmount(self) -> bool:
        reply = self._mountd(
            MountRequest(
                op=int(MountOp.UNMAP),
                ap_request=b"",
                uid_on_client=self.uid_on_client,
            )
        )
        return reply.ok

    def logout(self) -> str:
        """Invalidate every mapping for this user on the server."""
        reply = self._mountd(
            MountRequest(
                op=int(MountOp.LOGOUT),
                ap_request=b"",
                uid_on_client=self.uid_on_client,
            )
        )
        return reply.text

    def _mountd(self, request: MountRequest) -> MountReply:
        raw = self._rpc_with_retries(
            self.mountd_port, request.to_bytes, op="mountd"
        )
        return MountReply.from_bytes(raw)

    # -- mapping-loss recovery ------------------------------------------------

    def set_remount(self, remount: Optional[Callable[[], object]]) -> None:
        """Install a recovery hook.  The kernel map is volatile (ticket
        expiry purges entries; a server crash loses the whole table), so
        a long-lived client must be able to re-run the mount handshake
        mid-I/O.  When a call fails with a mapping-loss signature the
        hook runs once and the operation is retried."""
        self._remount = remount

    def enable_auto_remount(
        self, krb: KerberosClient, mount_service: Principal
    ) -> None:
        """The common hook: redo :meth:`kerberos_mount` with the given
        client — fresh authenticator, fresh mapping."""
        self.set_remount(lambda: self.kerberos_mount(krb, mount_service))

    #: Refusal texts that mean "your mapping is gone", not "you may not".
    #: ``stale mapping`` is the server's explicit expiry verdict; the
    #: access-error/permission texts are what an unmapped request decays
    #: to under the unfriendly and friendly policies respectively.
    _REMOUNTABLE = ("stale mapping", "NFS access error", "permission denied")

    @classmethod
    def _mapping_lost(cls, text: str) -> bool:
        return any(marker in text for marker in cls._REMOUNTABLE)

    # -- per-RPC Kerberos (the rejected design, for exp NFS) ------------------

    def enable_per_rpc_kerberos(
        self, krb: KerberosClient, nfs_service: Principal
    ) -> None:
        """Attach full Kerberos authentication to every transaction."""
        self._per_rpc_krb = krb
        self._per_rpc_service = nfs_service

    # -- file operations ----------------------------------------------------------

    def _call(
        self,
        op: NfsOp,
        path: str,
        data: bytes = b"",
        mode: int = 0,
    ) -> NfsReply:
        def build() -> bytes:
            ap_bytes = b""
            if self._per_rpc_krb is not None:
                # The cost the authors balked at: fresh authenticator per
                # op, full ticket + authenticator decryption on the server
                # (and rebuilt per retransmission for replay safety).
                ap_request, _, _ = self._per_rpc_krb.mk_req(
                    self._per_rpc_service
                )
                ap_bytes = ap_request.to_bytes()
            return NfsRequest(
                op=int(op),
                path=path,
                data=data,
                mode=mode,
                claimed_uid=self.uid_on_client,
                claimed_gids=self.gids,
                ap_request=ap_bytes,
            ).to_bytes()

        raw = self._rpc_with_retries(self.nfs_port, build, op="nfs")
        reply = NfsReply.from_bytes(raw)
        if not reply.ok:
            if self._remount is not None and self._mapping_lost(reply.text):
                # One re-mount, one retry: if the refusal really was a
                # lost mapping the fresh handshake repairs it; a genuine
                # permission denial fails again and surfaces as-is.
                self._remount()
                raw = self._rpc_with_retries(self.nfs_port, build, op="nfs")
                reply = NfsReply.from_bytes(raw)
                if reply.ok:
                    return reply
            raise NfsClientError(reply.text)
        return reply

    def getattr(self, path: str) -> Tuple[int, int, int, int]:
        parts = self._call(NfsOp.GETATTR, path).text.split(":")
        return (int(parts[0]), int(parts[1]), int(parts[2], 8), int(parts[3]))

    def read(self, path: str) -> bytes:
        return self._call(NfsOp.READ, path).data

    def write(self, path: str, data: bytes) -> int:
        return int(self._call(NfsOp.WRITE, path, data=data).text)

    def create(self, path: str, mode: int = 0o644) -> None:
        self._call(NfsOp.CREATE, path, mode=mode)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._call(NfsOp.MKDIR, path, mode=mode)

    def remove(self, path: str) -> None:
        self._call(NfsOp.REMOVE, path)

    def readdir(self, path: str) -> List[str]:
        return self._call(NfsOp.READDIR, path).names

    def chmod(self, path: str, mode: int) -> None:
        self._call(NfsOp.CHMOD, path, mode=mode)

    def rename(self, old: str, new: str) -> None:
        self._call(NfsOp.RENAME, old, data=new.encode("utf-8"))
