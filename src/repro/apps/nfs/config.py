"""Declarative export configuration for a Kerberized-NFS fleet.

The appendix configures its fileservers by editing kernel options and
``/etc/exports`` by hand; a fleet needs what modern appliances ship —
one validated, diffable document that fully determines a server's
behaviour and can be re-applied at runtime (TrueNAS-style config
restore).  :class:`NfsExportConfig` is that document:

* the **auth design** (:class:`AuthMode` — the appendix's three worlds
  plus the rejected per-RPC variant);
* the **unmapped policy** (friendly → ``nobody``, unfriendly → access
  error), only meaningful under ``MAPPED``;
* a set of :class:`ExportSpec` entries — path prefix, read-only flag,
  UID squashing, and the :class:`ClientRange` allowed to mount it.

Configs are immutable values: ``validate()`` rejects nonsense before it
reaches a kernel, ``diff()`` names exactly what changed between two
configs (what an operator reviews before an apply), and
``to_dict``/``from_dict`` round-trip through JSON for snapshot/restore.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.apps.nfs.credmap import UnmappedPolicy
from repro.netsim import IPAddress


class AuthMode(enum.Enum):
    """The appendix's authentication designs (see :mod:`.server`)."""

    TRUSTED = "trusted"
    UNTRUSTED = "untrusted"
    MAPPED = "mapped"
    KERBEROS_RPC = "kerberos-rpc"


class SquashMode(enum.Enum):
    """UID squashing on an export, as real ``/etc/exports`` offers.

    ``ROOT`` maps a mapped/claimed root credential to ``nobody`` (the
    classic ``root_squash``); ``ALL`` maps *every* credential to
    ``nobody`` (``all_squash`` — public scratch space)."""

    NONE = "none"
    ROOT = "root"
    ALL = "all"


class ConfigError(ValueError):
    """An export configuration failed validation."""


@dataclass(frozen=True)
class ClientRange:
    """A CIDR prefix of client addresses allowed to use an export."""

    cidr: str

    def __post_init__(self) -> None:
        base, slash, bits = self.cidr.partition("/")
        if not slash:
            raise ConfigError(f"client range {self.cidr!r} needs a /prefix")
        try:
            prefix_len = int(bits)
            address = IPAddress(base)
        except (ValueError, TypeError) as exc:
            raise ConfigError(f"bad client range {self.cidr!r}: {exc}") from exc
        if not 0 <= prefix_len <= 32:
            raise ConfigError(f"client range {self.cidr!r}: bad prefix length")
        mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
        if address.as_int & ~mask:
            raise ConfigError(
                f"client range {self.cidr!r}: host bits set below the mask"
            )
        object.__setattr__(self, "_network", address.as_int)
        object.__setattr__(self, "_mask", mask)

    def contains(self, client_addr) -> bool:
        return (IPAddress(client_addr).as_int & self._mask) == self._network


#: The open range: every client on the simulated internet.
ANY_CLIENT = ClientRange("0.0.0.0/0")


@dataclass(frozen=True)
class ExportSpec:
    """One exported subtree and its options."""

    path: str
    read_only: bool = False
    squash: SquashMode = SquashMode.NONE
    allowed: Tuple[ClientRange, ...] = (ANY_CLIENT,)

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ConfigError(f"export path must be absolute: {self.path!r}")
        if self.path != "/" and self.path.endswith("/"):
            raise ConfigError(f"export path must not end in '/': {self.path!r}")
        if not self.allowed:
            raise ConfigError(f"export {self.path!r} allows no clients")
        object.__setattr__(self, "allowed", tuple(self.allowed))

    def covers(self, path: str) -> bool:
        """Does this export contain ``path``?  Prefix match on path
        components, so ``/u`` covers ``/u/jis`` but not ``/usr``."""
        if self.path == "/":
            return path.startswith("/")
        return path == self.path or path.startswith(self.path + "/")

    def admits(self, client_addr) -> bool:
        return any(r.contains(client_addr) for r in self.allowed)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "read_only": self.read_only,
            "squash": self.squash.value,
            "allowed": [r.cidr for r in self.allowed],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ExportSpec":
        return cls(
            path=str(doc["path"]),
            read_only=bool(doc.get("read_only", False)),
            squash=SquashMode(doc.get("squash", "none")),
            allowed=tuple(
                ClientRange(c) for c in doc.get("allowed", ["0.0.0.0/0"])
            ),
        )


@dataclass(frozen=True)
class NfsExportConfig:
    """The full declarative configuration of one NFS server (or of a
    whole fleet, when applied uniformly)."""

    auth_mode: AuthMode = AuthMode.MAPPED
    unmapped_policy: UnmappedPolicy = UnmappedPolicy.FRIENDLY
    exports: Tuple[ExportSpec, ...] = (ExportSpec("/"),)

    def __post_init__(self) -> None:
        object.__setattr__(self, "exports", tuple(self.exports))
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.auth_mode, AuthMode):
            raise ConfigError(f"bad auth_mode: {self.auth_mode!r}")
        if not isinstance(self.unmapped_policy, UnmappedPolicy):
            raise ConfigError(f"bad unmapped_policy: {self.unmapped_policy!r}")
        if not self.exports:
            raise ConfigError("a config must export at least one path")
        seen = set()
        for spec in self.exports:
            if not isinstance(spec, ExportSpec):
                raise ConfigError(f"bad export entry: {spec!r}")
            if spec.path in seen:
                raise ConfigError(f"duplicate export path {spec.path!r}")
            seen.add(spec.path)

    # -- resolution -----------------------------------------------------------

    def export_for(self, path: str) -> Optional[ExportSpec]:
        """The most specific (longest-prefix) export covering ``path``,
        or None when the path is not exported at all."""
        best: Optional[ExportSpec] = None
        for spec in self.exports:
            if spec.covers(path):
                if best is None or len(spec.path) > len(best.path):
                    best = spec
        return best

    # -- the operator surface: diff / snapshot / restore ----------------------

    def diff(self, other: "NfsExportConfig") -> List[str]:
        """Human-readable change list from ``self`` to ``other`` — what a
        config apply will do, reviewable before it does it."""
        changes: List[str] = []
        if self.auth_mode != other.auth_mode:
            changes.append(
                f"auth_mode: {self.auth_mode.value} -> {other.auth_mode.value}"
            )
        if self.unmapped_policy != other.unmapped_policy:
            changes.append(
                "unmapped_policy: "
                f"{self.unmapped_policy.value} -> {other.unmapped_policy.value}"
            )
        mine = {spec.path: spec for spec in self.exports}
        theirs = {spec.path: spec for spec in other.exports}
        for path in sorted(mine.keys() - theirs.keys()):
            changes.append(f"export removed: {path}")
        for path in sorted(theirs.keys() - mine.keys()):
            changes.append(f"export added: {path}")
        for path in sorted(mine.keys() & theirs.keys()):
            if mine[path] != theirs[path]:
                changes.append(f"export changed: {path}")
        return changes

    def to_dict(self) -> dict:
        return {
            "auth_mode": self.auth_mode.value,
            "unmapped_policy": self.unmapped_policy.value,
            "exports": [spec.to_dict() for spec in self.exports],
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "NfsExportConfig":
        return cls(
            auth_mode=AuthMode(doc.get("auth_mode", "mapped")),
            unmapped_policy=UnmappedPolicy(doc.get("unmapped_policy", "friendly")),
            exports=tuple(
                ExportSpec.from_dict(e) for e in doc.get("exports", [])
            ),
        )

    # -- builders ------------------------------------------------------------------

    def with_mode(self, mode: AuthMode) -> "NfsExportConfig":
        return NfsExportConfig(mode, self.unmapped_policy, self.exports)

    def with_policy(self, policy: UnmappedPolicy) -> "NfsExportConfig":
        return NfsExportConfig(self.auth_mode, policy, self.exports)

    def with_exports(self, *exports: ExportSpec) -> "NfsExportConfig":
        return NfsExportConfig(self.auth_mode, self.unmapped_policy, exports)
