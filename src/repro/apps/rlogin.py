"""Kerberized rlogin and rsh (paper Section 7.1).

*"The rlogin and rsh commands first try to authenticate using Kerberos.
A user with valid Kerberos tickets can rlogin to another Athena machine
without having to set up .rhosts files.  If the Kerberos authentication
fails, the programs fall back on their usual methods of authorization,
in this case, the .rhosts files."*

The fallback path is the *old* world the paper's Section 1 criticizes —
"authentication is done by checking the Internet address from which a
connection has been established" — kept for compatibility, and kept
exploitable here so the threat tests can demonstrate exactly why
Kerberos replaced it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.apps.kerberized import (
    ChannelError,
    KerberizedChannel,
    KerberizedServer,
    Protection,
)
from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.errors import KerberosError
from repro.encode import WireStruct, field
from repro.netsim import Host, IPAddress, NetworkError
from repro.netsim.ports import KLOGIN_PORT, KSHELL_PORT, RSHD_PORT
from repro.principal import Principal


class RhostsRequest(WireStruct):
    """The legacy protocol: a bare *claim* of identity, trusted (or not)
    on the basis of the source address."""

    FIELDS = (
        field("claimed_user", "string"),
        field("local_user", "string"),
        field("command", "string"),
    )


class RhostsReply(WireStruct):
    FIELDS = (field("ok", "bool"), field("output", "string"))

#: Port for the legacy .rhosts-based fallback protocol.
RSHD_LEGACY_PORT = RSHD_PORT


class RloginServer(KerberizedServer):
    """An rlogin/rsh daemon on one timesharing machine.

    Runs the Kerberized protocol on ``port`` and the legacy ``.rhosts``
    protocol on :data:`RSHD_LEGACY_PORT`.  ``accounts`` maps local
    usernames to a command executor.
    """

    def __init__(
        self,
        service: Principal,
        srvtab: SrvTab,
        port: int = KSHELL_PORT,
    ) -> None:
        self.accounts: Dict[str, Callable[[str], str]] = {}
        # .rhosts entries: local_user -> {(remote_user, remote_host_addr)}
        self.rhosts: Dict[str, Set[Tuple[str, IPAddress]]] = {}
        self.kerberos_logins = 0
        self.rhosts_logins = 0
        super().__init__(service, srvtab, port)

    def ports(self):
        # Two ports: the Kerberized protocol and the legacy .rhosts
        # fallback — one Service, multiple listeners.
        return {
            self.port: self._dispatch,
            RSHD_LEGACY_PORT: self._handle_legacy,
        }

    def add_account(
        self, username: str, executor: Optional[Callable[[str], str]] = None
    ) -> None:
        if executor is None:
            executor = lambda cmd: f"{username}@{self.host.name}$ {cmd}: ok"
        self.accounts[username] = executor

    def add_rhosts_entry(
        self, local_user: str, remote_user: str, remote_host_addr
    ) -> None:
        """One line of ~local_user/.rhosts."""
        self.rhosts.setdefault(local_user, set()).add(
            (remote_user, IPAddress(remote_host_addr))
        )

    # -- Kerberized path ----------------------------------------------------

    def handle(self, session, data: bytes) -> bytes:
        """Command execution for the authenticated principal.  The
        Kerberos principal's primary name is the local account."""
        username = session.client.name
        executor = self.accounts.get(username)
        if executor is None:
            raise KerberosError(
                80, f"no account {username!r} on {self.host.name}"
            )
        self.kerberos_logins += 1
        return executor(data.decode("utf-8")).encode("utf-8")

    # -- legacy .rhosts path ------------------------------------------------------

    def _handle_legacy(self, datagram) -> bytes:
        request = RhostsRequest.from_bytes(datagram.payload)
        executor = self.accounts.get(request.local_user)
        if executor is None:
            return RhostsReply(ok=False, output="no such account").to_bytes()
        allowed = self.rhosts.get(request.local_user, set())
        # The old model: trust the host's word for who the user is, keyed
        # by source address only.  No proof of identity at all.
        if (request.claimed_user, IPAddress(datagram.src)) not in allowed:
            return RhostsReply(ok=False, output="Permission denied.").to_bytes()
        self.rhosts_logins += 1
        return RhostsReply(ok=True, output=executor(request.command)).to_bytes()


def rsh(
    krb: KerberosClient,
    service: Principal,
    server_address,
    command: str,
    local_user: Optional[str] = None,
    port: int = KSHELL_PORT,
) -> str:
    """Run a command remotely: Kerberos first, .rhosts fallback.

    Exactly the Section 7.1 behaviour: any Kerberos failure (no tickets,
    expired TGT, unregistered service) falls back to the legacy
    address-trusting protocol.
    """
    try:
        channel = KerberizedChannel(
            krb, service, server_address, port, protection=Protection.NONE
        )
        try:
            return channel.call(command.encode("utf-8")).decode("utf-8")
        finally:
            channel.close()
    except (KerberosError, ChannelError, NetworkError):
        pass  # fall back on the usual method of authorization

    user = local_user or (krb.principal.name if krb.principal else "nobody")
    request = RhostsRequest(
        claimed_user=user, local_user=user, command=command
    )
    raw = krb.host.rpc(
        IPAddress(server_address), RSHD_LEGACY_PORT, request.to_bytes()
    )
    reply = RhostsReply.from_bytes(raw)
    if not reply.ok:
        raise PermissionError(reply.output)
    return reply.output


def rlogin(
    krb: KerberosClient,
    service: Principal,
    server_address,
    port: int = KLOGIN_PORT,
) -> KerberizedChannel:
    """Open an interactive (mutually authenticated) login session."""
    return KerberizedChannel(
        krb,
        service,
        server_address,
        port,
        protection=Protection.NONE,
        mutual=True,
    )
