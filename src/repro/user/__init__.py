"""End-user programs (paper Figure 1's "user programs" and Section 6.1).

*"there are end-user programs for logging in to Kerberos, changing a
Kerberos password, and displaying or destroying Kerberos tickets"* —
kinit, kpasswd, klist, kdestroy — plus the administrator's kadmin
(Section 5.2) and the workstation log-in session of Section 6.1.
"""

from repro.user.login import LoginError, LoginSession
from repro.user.programs import (
    kadmin_add_principal,
    ksrvutil_list,
    kadmin_change_password,
    kdestroy,
    kinit,
    klist,
    kpasswd,
)

__all__ = [
    "LoginError",
    "LoginSession",
    "kadmin_add_principal",
    "kadmin_change_password",
    "kdestroy",
    "kinit",
    "klist",
    "kpasswd",
    "ksrvutil_list",
]
