"""The user and administrator command programs.

Each function mirrors one historical program's behaviour and produces
the human-readable output a user at a terminal would see; the heavy
lifting happens in :mod:`repro.core.client` and :mod:`repro.kdbm`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.kdbm.client import KdbmClient
from repro.principal import Principal


def kinit(
    client: KerberosClient,
    username: str,
    password: str,
    life: Optional[float] = None,
    instance: str = "",
) -> str:
    """Obtain a ticket-granting ticket (Section 6.1: run after a TGT
    expires mid-session, "as when logging in, a password must be
    provided")."""
    cred = client.kinit(username, password, life=life, instance=instance)
    return (
        f"Kerberos initialization for {client.principal}\n"
        f"Ticket-granting ticket issued at {cred.issue_time:.0f}, "
        f"expires at {cred.expires:.0f}"
    )


def _format_credential(cred: Credential) -> str:
    return (
        f"  issued {cred.issue_time:>12.0f}  expires {cred.expires:>12.0f}  "
        f"{cred.service}"
    )


def klist(client: KerberosClient) -> str:
    """Display the ticket file — often surprisingly full (Section 6.1)."""
    creds = client.klist()
    if client.principal is None and not creds:
        return "klist: no ticket file"
    header = f"Principal: {client.principal}\n"
    if not creds:
        return header + "No tickets."
    return header + "\n".join(_format_credential(c) for c in creds)


def kdestroy(client: KerberosClient) -> str:
    """Destroy all tickets (run automatically at logout, Section 6.1)."""
    count = client.kdestroy()
    return f"Tickets destroyed ({count} wiped)."


def kpasswd(
    kdbm: KdbmClient, username: str, old_password: str, new_password: str
) -> str:
    """Change one's own password (Section 5.2); the old password is
    required to fetch the KDBM ticket."""
    principal = Principal(username, "", kdbm.krb.realm)
    result = kdbm.change_password(principal, old_password, new_password)
    return f"Password changed for {principal}: {result}"


def kadmin_add_principal(
    kdbm: KdbmClient,
    admin_username: str,
    admin_password: str,
    new_username: str,
    initial_password: str,
    instance: str = "",
) -> str:
    """kadmin ank: an administrator registers a new principal
    (Section 5.2, Figure 12)."""
    admin = Principal(admin_username, "admin", kdbm.krb.realm)
    target = Principal(new_username, instance, kdbm.krb.realm)
    result = kdbm.add_principal(admin, admin_password, target, initial_password)
    return f"kadmin: {result}"


def kadmin_change_password(
    kdbm: KdbmClient,
    admin_username: str,
    admin_password: str,
    target_username: str,
    new_password: str,
    instance: str = "",
) -> str:
    """kadmin cpw: an administrator resets a user's password."""
    admin = Principal(admin_username, "admin", kdbm.krb.realm)
    target = Principal(target_username, instance, kdbm.krb.realm)
    result = kdbm.admin_change_password(admin, admin_password, target, new_password)
    return f"kadmin: {result}"


def ksrvutil_list(srvtab: SrvTab) -> str:
    """List the keys installed in a server's srvtab (never the key
    material itself, only names and versions) — the operator's check
    that key rotation actually landed on the machine."""
    if len(srvtab) == 0:
        return "ksrvutil: srvtab is empty"
    lines = ["Vno  Principal"]
    for name in srvtab.services():
        principal = Principal.parse(name)
        vno = srvtab._latest[name]
        lines.append(f"{vno:>3}  {name}")
    return "\n".join(lines)
