"""The workstation log-in session (paper Sections 4.2 and 6.1).

*"The process of logging in appears to the user to be the same as
logging in to a timesharing system ...  Behind the scenes, though, it is
quite different."*  And at the other end: *"Kerberos tickets are
automatically destroyed when a user logs out."*

:class:`LoginSession` models one user's tenure at a public workstation:
``login`` runs the Figure 5 exchange (raising :class:`LoginError` on a
bad password — which, per the protocol, is detected *locally* when the
AS reply fails to decrypt), the session then uses Kerberized services
transparently, and ``logout`` destroys all tickets.

The full Athena login — Hesiod home-directory lookup and the NFS mount
of the appendix — is layered on top in
:class:`repro.apps.workstation.AthenaWorkstation`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.core.errors import ErrorCode, KerberosError
from repro.netsim import Host, NetworkError


class LoginError(Exception):
    """Login failed: bad password, unknown user, or no reachable KDC."""


class LoginSession:
    """One user's log-in session on a workstation."""

    def __init__(self, host: Host, client: KerberosClient) -> None:
        self.host = host
        self.client = client
        self.username: Optional[str] = None
        self.login_time: Optional[float] = None

    @property
    def logged_in(self) -> bool:
        return self.username is not None

    def login(self, username: str, password: str) -> Credential:
        """Authenticate via Kerberos rather than a local password file.

        The failure modes map exactly to the protocol: an unknown user is
        an error *from* the KDC; a wrong password is a reply that will
        not decrypt, detected on the workstation.
        """
        if self.logged_in:
            raise LoginError(f"{self.username} is already logged in here")
        try:
            tgt = self.client.kinit(username, password)
        except KerberosError as exc:
            if exc.code == ErrorCode.INTK_BADPW:
                raise LoginError("Incorrect password") from exc
            if exc.code == ErrorCode.KDC_PR_UNKNOWN:
                raise LoginError(f"No such user: {username}") from exc
            raise LoginError(f"Login failed: {exc}") from exc
        except NetworkError as exc:
            raise LoginError(f"Login failed: {exc}") from exc
        self.username = username
        self.login_time = self.host.clock.now()
        return tgt

    def logout(self) -> int:
        """End the session; "Kerberos tickets are automatically destroyed
        when a user logs out."  Returns the number wiped."""
        if not self.logged_in:
            raise LoginError("nobody is logged in")
        count = self.client.kdestroy()
        self.username = None
        self.login_time = None
        return count

    def session_duration(self) -> float:
        if self.login_time is None:
            raise LoginError("nobody is logged in")
        return self.host.clock.now() - self.login_time
