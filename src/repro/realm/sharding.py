"""Horizontal sharding of the principal database (the ROADMAP's
"million principals behind one realm name").

The paper sizes a realm at Athena's thousands of users; one master
database serves them all.  This module partitions the principal space
by name hash across N KDC **shards** — each shard a full master+slaves
group with its own update-journal epoch (PR 5) and worker pool (PR 4)
— behind a consistent-hash ring, the shape of GRR's horizontally
sharded datastore:

* :class:`HashRing` — the partition function: a 32-bit hash space cut
  into segments, each owned by one shard, seeded deterministically
  from the realm name so every party derives the same ring.
* :class:`ShardMembership` — a KDC's server-side view: "do I own this
  principal?"  A request for a principal the ring assigns elsewhere is
  answered with a typed :class:`~repro.core.errors.WrongShard`
  *referral* carrying the authoritative shard's addresses, counted in
  ``kdc.referrals_total``.
* :class:`ShardedLocator` — the client-side routing layer: a
  :class:`~repro.core.locator.KdcLocator` holding a ring *snapshot*
  (from the realm directly, or from Hesiod's ``_kerberos-ring``
  record), routing each exchange to the owning shard's replica list;
  per-shard failover rides the existing ``run_with_failover`` policy.
* :class:`RangeReceiver` + :func:`move_range` — rebalancing as
  journal-entry replay over the delta-kprop transport: the range's
  records stream as :class:`~repro.database.journal.JournalEntry`
  batches under the master-key MAC, the target *double-serves* the
  range during the handoff window, then the ring epoch flips and the
  source deletes the moved records.

Stale clients are the design's steady state, not an error: a ring
change invalidates every cached snapshot at once, and the referral
path repairs each client lazily, one bounced request at a time.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.apps.hesiod import (
    HesiodRingRecord,
    hesiod_ring,
    hesiod_shard_kdcs,
)
from repro.core.errors import ErrorCode, WrongShard, referral_text
from repro.core.locator import KdcLocator
from repro.core.service import Service
from repro.database.db import KerberosDatabase, MASTER_VERIFY_KEY
from repro.database.journal import JournalEntry, OP_DELETE, OP_PUT
from repro.encode import DecodeError
from repro.netsim import IPAddress
from repro.netsim.ports import HESIOD_PORT, SHARD_PORT
from repro.realm.bootstrap import Realm, RealmTopology
from repro.replication.messages import (
    DeltaBody,
    DeltaReply,
    DeltaStatus,
    DeltaTransfer,
    PropKind,
    decode_prop_message,
    encode_prop_message,
)

#: The ring's hash space: 32 bits, like the historical consistent-hash
#: deployments — comfortably finer than any realistic shard count.
RING_BITS = 32
RING_SPACE = 1 << RING_BITS

#: Virtual nodes per shard when seeding a ring: enough that the largest
#: arc is within a small factor of fair share, few enough that segment
#: lists stay readable in traces.
DEFAULT_VNODES = 16

#: Journal entries per datagram when streaming a range — bounds packet
#: size the way delta kprop chunks its transfers.
STREAM_CHUNK = 256


def hash_point(key: str) -> int:
    """A principal db-key's position on the ring.

    SHA-256-derived rather than Python's ``hash``: stable across
    processes and runs, so client and KDC always agree — the whole
    scheme is one shared pure function of the key.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """The partition function: sorted ``(start, shard)`` segments over
    the 32-bit hash space.  A point belongs to the segment with the
    greatest start at or below it (wrapping below the first segment).

    ``epoch`` increments on every :meth:`move_range`; clients compare
    epochs to recognize a stale snapshot from a referral.
    """

    def __init__(
        self, segments: List[Tuple[int, int]], epoch: int = 1,
        n_shards: Optional[int] = None,
    ) -> None:
        if not segments:
            raise ValueError("a ring needs at least one segment")
        self._segments = sorted(
            (int(p) % RING_SPACE, int(s)) for p, s in segments
        )
        self._merge()
        self.epoch = int(epoch)
        self.n_shards = (
            int(n_shards) if n_shards is not None
            else max(s for _, s in self._segments) + 1
        )

    @classmethod
    def seeded(
        cls, realm: str, n_shards: int, vnodes: int = DEFAULT_VNODES,
        epoch: int = 1,
    ) -> "HashRing":
        """The deterministic bootstrap ring: ``vnodes`` points per shard
        hashed from ``realm|shard|vnode``.  Same inputs, same ring —
        every KDC, client, and test derives an identical partition."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        points: Dict[int, int] = {}
        for shard in range(n_shards):
            for v in range(vnodes):
                p = hash_point(f"{realm}|shard{shard}|vnode{v}")
                # Collisions resolve to the lowest shard id — any
                # deterministic rule works, it just must be *a* rule.
                if p not in points or shard < points[p]:
                    points[p] = shard
        return cls(
            sorted(points.items()), epoch=epoch, n_shards=n_shards
        )

    def _merge(self) -> None:
        merged: List[Tuple[int, int]] = []
        for start, shard in self._segments:
            if merged and merged[-1][1] == shard:
                continue
            merged.append((start, shard))
        self._segments = merged

    # -- lookup -----------------------------------------------------------

    def shard_for_point(self, point: int) -> int:
        point %= RING_SPACE
        # Greatest start <= point; below the first start, wrap to last.
        lo, hi = 0, len(self._segments)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid][0] <= point:
                lo = mid + 1
            else:
                hi = mid
        return self._segments[lo - 1][1]  # lo==0 wraps via index -1

    def shard_for(self, key: str) -> int:
        return self.shard_for_point(hash_point(key))

    def shards(self) -> List[int]:
        return sorted({s for _, s in self._segments})

    def segments(self) -> List[Tuple[int, int]]:
        return list(self._segments)

    def segments_in(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """Decompose the half-open range ``[lo, hi)`` into maximal
        ``(sub_lo, sub_hi, owner)`` pieces (no wrap-around; callers
        split a wrapping range into two)."""
        if not 0 <= lo < hi <= RING_SPACE:
            raise ValueError(f"bad range [{lo}, {hi})")
        cuts = [lo] + [
            p for p, _ in self._segments if lo < p < hi
        ] + [hi]
        return [
            (a, b, self.shard_for_point(a))
            for a, b in zip(cuts, cuts[1:])
        ]

    def arcs_of(self, shard: int) -> List[Tuple[int, int]]:
        """The half-open ``[lo, hi)`` ranges ``shard`` owns (the final
        wrap-around arc is reported as ``[lo, RING_SPACE)`` plus
        ``[0, first_start)``)."""
        arcs = []
        segs = self._segments
        for i, (start, owner) in enumerate(segs):
            if owner != shard:
                continue
            end = segs[i + 1][0] if i + 1 < len(segs) else RING_SPACE
            arcs.append((start, end))
        if segs[-1][1] == shard and segs[0][0] > 0:
            arcs.append((0, segs[0][0]))
        return arcs

    # -- mutation ---------------------------------------------------------

    def move_range(self, lo: int, hi: int, to_shard: int) -> None:
        """Reassign ``[lo, hi)`` to ``to_shard`` and flip the epoch.
        Pure ring surgery — the data motion lives in
        :func:`repro.realm.sharding.move_range`."""
        if not 0 <= lo < hi <= RING_SPACE:
            raise ValueError(f"bad range [{lo}, {hi})")
        boundary = hi % RING_SPACE
        owner_after = self.shard_for_point(boundary)
        kept = [(p, s) for p, s in self._segments if not lo <= p < hi]
        kept.append((lo, int(to_shard)))
        if not any(p == boundary for p, _ in kept):
            kept.append((boundary, owner_after))
        self._segments = sorted(kept)
        self._merge()
        self.n_shards = max(self.n_shards, int(to_shard) + 1)
        self.epoch += 1

    # -- snapshots and wire form ------------------------------------------

    def copy(self) -> "HashRing":
        return HashRing(
            list(self._segments), epoch=self.epoch, n_shards=self.n_shards
        )

    def to_record(self, realm: str) -> HesiodRingRecord:
        return HesiodRingRecord(
            realm=realm,
            epoch=self.epoch,
            n_shards=self.n_shards,
            segments=[f"{p}:{s}" for p, s in self._segments],
        )

    @classmethod
    def from_record(cls, record: HesiodRingRecord) -> "HashRing":
        segments = []
        for item in record.segments:
            p, _, s = item.partition(":")
            segments.append((int(p), int(s)))
        return cls(
            segments, epoch=record.epoch, n_shards=record.n_shards
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HashRing)
            and self._segments == other._segments
            and self.epoch == other.epoch
        )

    def __repr__(self) -> str:
        return (
            f"HashRing(epoch={self.epoch}, n_shards={self.n_shards}, "
            f"segments={len(self._segments)})"
        )


class ShardDirectory:
    """shard id -> that shard's KDC addresses, shard master first.

    The realm holds the live copy; locators hold snapshots of it."""

    def __init__(
        self, entries: Optional[Dict[int, List[IPAddress]]] = None
    ) -> None:
        self._entries: Dict[int, List[IPAddress]] = {}
        for shard, addresses in (entries or {}).items():
            self.set_shard(shard, addresses)

    def set_shard(self, shard: int, addresses: Iterable) -> None:
        self._entries[int(shard)] = [IPAddress(a) for a in addresses]

    def addresses(self, shard: int) -> List[IPAddress]:
        return list(self._entries.get(int(shard), []))

    def shards(self) -> List[int]:
        return sorted(self._entries)

    def snapshot(self) -> Dict[int, List[IPAddress]]:
        return {s: list(a) for s, a in self._entries.items()}


class ShardMembership:
    """One KDC's authoritative answer to "is this principal mine?"

    Shared by every KDC (master and slaves) of one shard; holds the
    realm's *live* ring, the shard's id, and the ``extra_ranges`` the
    shard double-serves during a handoff window.
    """

    def __init__(
        self, shard_id: int, ring: HashRing, directory: ShardDirectory
    ) -> None:
        self.shard_id = int(shard_id)
        self.ring = ring
        self.directory = directory
        #: Half-open ``[lo, hi)`` ranges served *in addition to* the
        #: ring's assignment — open during a range move, cleared at the
        #: epoch flip.
        self.extra_ranges: List[Tuple[int, int]] = []

    def owns_point(self, point: int) -> bool:
        if self.ring.shard_for_point(point) == self.shard_id:
            return True
        return any(lo <= point < hi for lo, hi in self.extra_ranges)

    def owns(self, key: str) -> bool:
        return self.owns_point(hash_point(key))

    def referral_for(self, key: str) -> Optional[WrongShard]:
        """The typed referral for a principal this shard does not own —
        None when the ring says the principal *is* ours (an unknown
        name here is genuinely unknown, not misrouted)."""
        point = hash_point(key)
        if self.owns_point(point):
            return None
        owner = self.ring.shard_for_point(point)
        return WrongShard(
            ErrorCode.KDC_WRONG_SHARD,
            referral_text(
                owner, self.ring.epoch, self.directory.addresses(owner)
            ),
        )


class ShardReferral(NamedTuple):
    """A parsed :class:`WrongShard`, as locators consume it."""

    shard: int
    ring_epoch: int
    kdcs: List[str]

    @classmethod
    def from_error(cls, err: WrongShard) -> "ShardReferral":
        return cls(shard=err.shard, ring_epoch=err.ring_epoch, kdcs=err.kdcs)


class LocalRingSource:
    """Snapshot source wired straight to the realm object — what the
    realm's own workstations use (no discovery round-trip)."""

    def __init__(self, realm) -> None:
        self._realm = realm

    def fetch(self) -> Tuple[HashRing, Dict[int, List[IPAddress]]]:
        return self._realm.ring.copy(), self._realm.directory.snapshot()


class HesiodRingSource:
    """Snapshot source reading the ``_kerberos-ring`` and
    ``_kerberos-shard.N`` records from a Hesiod server — the
    discovery path a real workstation would use."""

    def __init__(
        self, host, hesiod_address, realm: str, port: int = HESIOD_PORT
    ) -> None:
        self._host = host
        self._hesiod = IPAddress(hesiod_address)
        self._realm = realm
        self._port = port

    def fetch(self) -> Tuple[HashRing, Dict[int, List[IPAddress]]]:
        record = hesiod_ring(
            self._host, self._hesiod, self._realm, port=self._port
        )
        if record is None:
            raise ValueError(
                f"Hesiod serves no ring record for realm {self._realm}"
            )
        ring = HashRing.from_record(record)
        directory: Dict[int, List[IPAddress]] = {}
        for shard in range(record.n_shards):
            addresses = hesiod_shard_kdcs(
                self._host, self._hesiod, self._realm, shard,
                port=self._port,
            )
            if addresses:
                directory[shard] = addresses
        return ring, directory


class ShardedLocator(KdcLocator):
    """Client-side shard routing: hash the principal, return the owning
    shard's replica list (shard master first — per-shard failover then
    rides ``run_with_failover`` unchanged).

    Holds a *snapshot* of ring + directory, refreshed only on
    :meth:`refresh` or a referral — deliberately allowed to go stale,
    because the server-side :class:`WrongShard` referral is the
    convergence mechanism after a ring change.
    """

    def __init__(self, source) -> None:
        self._source = source
        self._ring: Optional[HashRing] = None
        self._directory: Dict[int, List[IPAddress]] = {}

    def _ensure(self) -> None:
        if self._ring is None:
            self._ring, self._directory = self._source.fetch()

    @property
    def ring_epoch(self) -> int:
        self._ensure()
        return self._ring.epoch

    def locate(self, routing_key: Optional[str] = None) -> List[IPAddress]:
        self._ensure()
        if routing_key is None:
            # No principal to route by (introspection, probes): the
            # lowest shard answers — any shard can referral-correct.
            shards = sorted(self._directory)
            return list(self._directory[shards[0]]) if shards else []
        shard = self._ring.shard_for(routing_key)
        return list(self._directory.get(shard, []))

    def refresh(self) -> None:
        self._ring, self._directory = self._source.fetch()

    def apply_referral(self, referral) -> None:
        """Fold a referral in: adopt the authoritative shard's address
        list immediately, and re-fetch the ring when the referrer's
        epoch is ahead of our snapshot."""
        shard = getattr(referral, "shard", -1)
        kdcs = getattr(referral, "kdcs", [])
        if shard >= 0 and kdcs:
            self._directory[shard] = [IPAddress(a) for a in kdcs]
        if getattr(referral, "ring_epoch", 0) > self.ring_epoch:
            self.refresh()


class RangeReceiver(Service):
    """The shard-master daemon that ingests a streamed hash range.

    Listens on :data:`~repro.netsim.ports.SHARD_PORT` for delta-kprop
    transfers (:class:`DeltaTransfer` under the one-byte envelope) and
    applies their journal entries through the target database's
    *journaled* write path — so the target's own slaves replicate the
    moved records through ordinary delta propagation, and the master-key
    MAC enforces the same "only information from the master host"
    discipline as Figure 13 transfers.
    """

    def __init__(
        self, database: KerberosDatabase, port: int = SHARD_PORT
    ) -> None:
        super().__init__()
        if database.readonly:
            raise ValueError(
                "a range receiver ingests into the shard master's "
                "writable database"
            )
        self.db = database
        self.port = port
        self.entries_applied = 0

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        self.metrics = self.host.network.metrics
        self.tracer = self.host.network.tracer
        self._labels = {"server": self.host.name}

    def _reject(self, text: str) -> bytes:
        self.metrics.counter(
            "shard.range_transfers_total",
            {**self._labels, "result": "rejected"},
        ).inc()
        return DeltaReply(
            status=int(DeltaStatus.REJECTED),
            applied_seq=0,
            applied_time=0.0,
            text=text,
        ).to_bytes()

    def _handle(self, datagram) -> bytes:
        with self.tracer.span_under(
            datagram.trace, "shard.range_apply", host=self.host.name
        ):
            try:
                kind, transfer = decode_prop_message(datagram.payload)
            except DecodeError as exc:
                return self._reject(f"undecodable transfer: {exc}")
            if kind != PropKind.DELTA or not isinstance(
                transfer, DeltaTransfer
            ):
                return self._reject("range moves ride delta transfers")
            if not self.db.master_key.verify_checksum(
                transfer.body, transfer.checksum
            ):
                return self._reject("checksum mismatch (not the master key)")
            try:
                body = DeltaBody.from_bytes(transfer.body)
            except DecodeError as exc:
                return self._reject(f"undecodable delta body: {exc}")
            now = self.host.clock.now()
            for entry in body.entries:
                if entry.key == MASTER_VERIFY_KEY:
                    continue  # every shard already holds its own K.M
                if entry.op == OP_PUT:
                    self.db.import_record(entry.key, entry.value, now=now)
                elif entry.op == OP_DELETE:
                    self.db.remove_record(entry.key, now=now)
            self.entries_applied += len(body.entries)
            self.metrics.counter(
                "shard.range_transfers_total",
                {**self._labels, "result": "applied"},
            ).inc()
            return DeltaReply(
                status=int(DeltaStatus.OK),
                applied_seq=body.to_seq,
                applied_time=now,
                text="",
            ).to_bytes()


class RangeMoveResult(NamedTuple):
    """What one :func:`move_range` did."""

    moved: int          # records streamed (snapshot + catch-up)
    deleted: int        # records removed from source shards
    epoch: int          # ring epoch after the flip
    sources: List[int]  # shard ids that gave up part of the range


def _send_entries(
    realm, source_shard, target_address: IPAddress,
    entries: List[JournalEntry], now: float,
) -> None:
    """Stream entries to the target's range receiver in MAC'd chunks."""
    master_key = source_shard.db.master_key
    sent = 0
    for i in range(0, len(entries), STREAM_CHUNK):
        chunk = entries[i:i + STREAM_CHUNK]
        body = DeltaBody(
            epoch=realm.ring.epoch,
            from_seq=sent,
            to_seq=sent + len(chunk),
            time=now,
            entries=chunk,
        ).to_bytes()
        wire = encode_prop_message(
            PropKind.DELTA,
            DeltaTransfer(checksum=master_key.checksum(body), body=body),
        )
        raw = source_shard.master_host.rpc(
            target_address, SHARD_PORT, wire
        )
        reply = DeltaReply.from_bytes(raw)
        if reply.status != int(DeltaStatus.OK):
            raise RuntimeError(
                f"range transfer rejected by target shard: {reply.text}"
            )
        sent += len(chunk)


def move_range(realm, lo: int, hi: int, to_shard: int) -> RangeMoveResult:
    """Move the hash range ``[lo, hi)`` to ``to_shard``: stream, then
    double-serve, then flip, then delete.

    1. The target opens a **double-serve** window for the range, so a
       request that lands there mid-move is answered, not bounced back.
    2. Each source shard streams its records in the range as journal
       entries over the delta-kprop transport (master-key MAC), then a
       catch-up pass replays anything journaled *during* the stream —
       the event loop pumps while RPCs are in flight, so concurrent
       password changes are real.
    3. The ring reassigns the range and flips its epoch (clients learn
       lazily, via refresh or :class:`WrongShard` referrals).
    4. The sources delete the moved records (journaled, so their slaves
       follow), closing the window.
    """
    ring = realm.ring
    if ring is None:
        raise ValueError("move_range needs a sharded realm")
    if not 0 <= int(to_shard) < len(realm.shards):
        raise ValueError(f"no shard {to_shard} in realm {realm.name}")
    pieces = ring.segments_in(lo, hi)
    source_ids = sorted({
        owner for _a, _b, owner in pieces if owner != int(to_shard)
    })
    target = realm.shards[int(to_shard)]
    result_epoch = ring.epoch
    if not source_ids:
        return RangeMoveResult(0, 0, result_epoch, [])
    net = realm.net
    now = net.clock.now()
    target_membership = target.kdc.shard
    window = (int(lo), int(hi))
    target_membership.extra_ranges.append(window)
    moved = deleted = 0
    moved_keys: Dict[int, List[str]] = {}
    try:
        for sid in source_ids:
            source = realm.shards[sid]
            own_pieces = [
                (a, b) for a, b, owner in pieces if owner == sid
            ]

            def in_range(key: str, own_pieces=own_pieces) -> bool:
                if key == MASTER_VERIFY_KEY or realm.is_global_key(key):
                    return False
                p = hash_point(key)
                return any(a <= p < b for a, b in own_pieces)

            mark = source.db.journal.last_seq
            snapshot = [
                JournalEntry(
                    seq=i + 1, time=now, op=OP_PUT, key=key,
                    value=bytes(value),
                )
                for i, (key, value) in enumerate(
                    sorted(source.db.store.items())
                )
                if in_range(key)
            ]
            _send_entries(
                realm, source, target.master_host.address, snapshot, now
            )
            # Catch-up: mutations journaled while the stream's RPCs
            # pumped the event loop (kpasswd mid-move, new users).
            tail = source.db.journal.entries_matching(mark, in_range)
            if tail:
                _send_entries(
                    realm, source, target.master_host.address, tail,
                    net.clock.now(),
                )
            keys = {e.key for e in snapshot} | {
                e.key for e in tail if e.op == OP_PUT
            }
            keys -= {e.key for e in tail if e.op == OP_DELETE}
            moved_keys[sid] = sorted(keys)
            moved += len(snapshot) + len(tail)
        # The flip: from here the ring names the target as owner.
        ring.move_range(lo, hi, int(to_shard))
        result_epoch = ring.epoch
    finally:
        target_membership.extra_ranges.remove(window)
    flip_time = net.clock.now()
    for sid in source_ids:
        source = realm.shards[sid]
        for key in moved_keys[sid]:
            if source.db.remove_record(key, now=flip_time):
                deleted += 1
    net.metrics.counter(
        "shard.rebalance_entries_total", {"realm": realm.name}
    ).inc(moved)
    net.metrics.gauge(
        "shard.ring_epoch", {"realm": realm.name}
    ).set(ring.epoch)
    realm.republish_ring()
    # Let the affected shards' slaves catch up promptly rather than
    # waiting for the cadence: the target replicates the imports, the
    # sources replicate the deletes.
    for sid in source_ids + [int(to_shard)]:
        shard = realm.shards[sid]
        if shard.slaves:
            shard.kprop.propagate()
    net.audit.emit(
        "shard_rebalanced",
        host=target.master_host.name,
        detail=(
            f"range [{lo}, {hi}) -> shard {to_shard} from "
            f"{source_ids}; {moved} entries, epoch {ring.epoch}"
        ),
    )
    return RangeMoveResult(moved, deleted, result_epoch, source_ids)


class ShardedRealm(Realm):
    """A realm whose principal database is partitioned across N shards.

    Sugar over ``Realm(topology=RealmTopology(shards=N, ring=True))`` —
    one bootstrap path, per the API-redesign satellite.  ``ring=True``
    means even a one-shard :class:`ShardedRealm` carries the ring
    machinery, so it can grow by :meth:`move_range` later.
    """

    def __init__(
        self,
        net,
        name: str,
        shards: int = 2,
        slaves_per_shard: int = 0,
        master_password: str = "master-password",
        seed: bytes = b"realm-seed",
        host_prefix: Optional[str] = None,
        kdc_workers: Optional[int] = None,
        kdc_queue=None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        super().__init__(
            net,
            name,
            master_password=master_password,
            seed=seed,
            host_prefix=host_prefix,
            topology=RealmTopology(
                shards=shards,
                slaves_per_shard=slaves_per_shard,
                kdc_workers=kdc_workers,
                kdc_queue=kdc_queue,
                vnodes=vnodes,
                ring=True,
            ),
        )

    def move_range(self, lo: int, hi: int, to_shard: int) -> RangeMoveResult:
        """Rebalance: see :func:`repro.realm.sharding.move_range`."""
        return move_range(self, lo, hi, to_shard)

    def sharded_locator(self) -> ShardedLocator:
        """A fresh locator snapshotting this realm's live ring."""
        return ShardedLocator(LocalRingSource(self))


__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "HesiodRingSource",
    "LocalRingSource",
    "RangeMoveResult",
    "RangeReceiver",
    "RING_SPACE",
    "ShardDirectory",
    "ShardMembership",
    "ShardReferral",
    "ShardedLocator",
    "ShardedRealm",
    "hash_point",
    "move_range",
]
