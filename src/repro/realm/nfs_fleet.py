"""Fleet bootstrap for the appendix's Kerberized NFS (the fleet PR).

The appendix measures one fileserver; Athena ran racks of them.
:class:`NfsFleet` stands up N ``NfsServer``/``MountDaemon`` pairs
against an existing :class:`~repro.realm.bootstrap.Realm` — each pair
on its own host with its own service principals, srvtab, kernel
credential map, and replay cache — all driven by one declarative
:class:`~repro.apps.nfs.config.NfsExportConfig`.

The config is the fleet's operator surface: :meth:`apply_config` pushes
a new document to every server (returning the per-server change lists),
:meth:`snapshot_config`/:meth:`restore_config` round-trip it through a
plain dict, TrueNAS-config-restore style.  User provisioning
(:meth:`add_user`) installs the passwd entry and the 0700 home
directory on every server, the way Athena's account pipeline populated
every fileserver from the same source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.nfs.client import NfsClient
from repro.apps.nfs.config import NfsExportConfig
from repro.apps.nfs.mountd import MountDaemon
from repro.apps.nfs.server import NfsServer
from repro.core.applib import SrvTab
from repro.netsim import Host
from repro.principal import Principal


@dataclass(frozen=True)
class NfsUserSpec:
    """One user to provision across the fleet."""

    username: str
    uid: int
    gids: Tuple[int, ...] = (100,)


@dataclass
class FleetServer:
    """One fileserver pair: host, NFS server, mountd, and identities."""

    index: int
    host: Host
    server: NfsServer
    mountd: MountDaemon
    nfs_service: Principal
    mount_service: Principal
    srvtab: SrvTab

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def address(self):
        return self.host.address


class NfsFleet:
    """N Kerberized fileservers behind one declarative config."""

    def __init__(
        self,
        realm,
        n_servers: int = 2,
        config: Optional[NfsExportConfig] = None,
        name_prefix: str = "nfs",
        users: Sequence[NfsUserSpec] = (),
    ) -> None:
        if n_servers < 1:
            raise ValueError("a fleet needs at least one server")
        self.realm = realm
        self.net = realm.net
        self.config = config if config is not None else NfsExportConfig()
        self.servers: List[FleetServer] = []
        self._users: Dict[str, NfsUserSpec] = {}

        for i in range(n_servers):
            hostname = f"{name_prefix}{i + 1}"
            host = self.net.add_host(hostname)
            nfs_service, _ = realm.add_service("nfs", hostname)
            mount_service, _ = realm.add_service("mountd", hostname)
            # Each machine installs its *own* srvtab — compromising one
            # fileserver's keys must not open its siblings.
            srvtab = realm.srvtab_for(nfs_service, mount_service)
            server = NfsServer(
                config=self.config,
                service=nfs_service,
                srvtab=srvtab,
            ).attach(host)
            mountd = MountDaemon(server, mount_service, srvtab).attach(host)
            self.servers.append(FleetServer(
                index=i,
                host=host,
                server=server,
                mountd=mountd,
                nfs_service=nfs_service,
                mount_service=mount_service,
                srvtab=srvtab,
            ))

        self.net.metrics.gauge("nfs.fleet_servers", {}).set(n_servers)
        for spec in users:
            self.add_user(spec)

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> FleetServer:
        return self.servers[index]

    # -- provisioning ---------------------------------------------------------

    def add_user(self, spec: NfsUserSpec) -> None:
        """Provision one user on every server: passwd entry plus the
        0700 home directory (Athena's account pipeline, fleet-wide)."""
        self._users[spec.username] = spec
        gid = spec.gids[0] if spec.gids else 0
        for site in self.servers:
            site.server.passwd.add(spec.username, spec.uid, spec.gids)
            if not site.server.fs.exists(f"/u/{spec.username}"):
                site.server.fs.install_home(spec.username, spec.uid, gid)

    def user(self, username: str) -> NfsUserSpec:
        return self._users[username]

    # -- the declarative config surface --------------------------------------

    def apply_config(self, config: NfsExportConfig) -> Dict[str, List[str]]:
        """Push one config document to every server; returns the change
        list each server applied (identical fleet-wide by construction,
        but reported per server — that is what an operator audits)."""
        config.validate()
        changes = {
            site.name: site.server.apply_config(config)
            for site in self.servers
        }
        self.config = config
        return changes

    def snapshot_config(self) -> dict:
        """The current config as a plain JSON-able document."""
        return self.config.to_dict()

    def restore_config(self, snapshot: dict) -> Dict[str, List[str]]:
        """Re-apply a previously snapshotted config (config restore)."""
        return self.apply_config(NfsExportConfig.from_dict(snapshot))

    # -- fleet-wide views ------------------------------------------------------

    def total_mappings(self) -> int:
        """Live kernel-map entries across every server."""
        return sum(len(site.server.credmap) for site in self.servers)

    def mappings_by_server(self) -> Dict[str, dict]:
        """Full credential-map snapshot per server — what the
        conformance matrix asserts against."""
        return {
            site.name: site.server.credmap.entries()
            for site in self.servers
        }

    # -- client plumbing ------------------------------------------------------

    def client(
        self,
        ws,
        index: int,
        uid_on_client: int,
        gids: Optional[Sequence[int]] = None,
        retry_policy=None,
    ) -> NfsClient:
        """An :class:`NfsClient` on workstation ``ws`` (a
        :class:`~repro.realm.bootstrap.Workstation` or bare host)
        pointed at fleet server ``index``."""
        host = getattr(ws, "host", ws)
        site = self.servers[index]
        return NfsClient(
            host,
            site.address,
            uid_on_client=uid_on_client,
            gids=list(gids) if gids else None,
            retry_policy=retry_policy,
        )
