"""One-call bootstrap of a complete Kerberos realm.

Ties every Figure 1 component together the way the Athena administrator
of Section 6.3 would: initialize the database, register essential
principals, start the authentication and administration servers, stand
up slaves with propagation, extract srvtabs for services, and hand out
workstations with client libraries.
"""

from repro.realm.bootstrap import Realm, RealmTopology, Workstation, link
from repro.realm.nfs_fleet import FleetServer, NfsFleet, NfsUserSpec
from repro.realm.sharding import ShardedRealm
from repro.realm.supervisor import RealmSupervisor, SupervisorConfig

__all__ = [
    "FleetServer",
    "NfsFleet",
    "NfsUserSpec",
    "Realm",
    "RealmSupervisor",
    "RealmTopology",
    "ShardedRealm",
    "SupervisorConfig",
    "Workstation",
    "link",
]
