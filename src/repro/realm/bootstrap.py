"""Realm assembly (the Section 6.3 administrator's checklist, automated).

*"The Kerberos administrator's job begins with running a program to
initialize the database.  Another program must be run to register
essential principals ...  The Kerberos authentication server and the
administration server must be started up.  If there are slave databases,
the administrator must arrange that the programs to propagate database
updates from master to slaves be kicked off periodically."*

:class:`Realm` performs exactly those steps against a simulated network
and exposes the running parts for tests, examples, and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.crossrealm import link_realms
from repro.core.kdc import KerberosServer
from repro.crypto import DesKey, KeyGenerator, keycache
from repro.crypto import modes
from repro.database.acl import AccessControlList
from repro.database.admin_tools import (
    ext_srvtab,
    kdb_init,
    register_essential_admin,
    register_service,
)
from repro.database.db import KerberosDatabase
from repro.database.journal import default_epoch
from repro.database.schema import DEFAULT_MAX_LIFE
from repro.kdbm.server import KdbmServer
from repro.netsim import Host, IPAddress, Network
from repro.netsim.clock import HOUR
from repro.principal import Principal
from repro.replication.kprop import Kprop
from repro.replication.kpropd import Kpropd


@dataclass
class SlaveSite:
    """One slave machine: read-only DB copy + auth server + kpropd."""

    host: Host
    db: KerberosDatabase
    kdc: KerberosServer
    kpropd: Kpropd


@dataclass
class Workstation:
    """A user-controlled machine with its Kerberos client library."""

    host: Host
    client: KerberosClient


class Realm:
    """A running Kerberos realm: master, optional slaves, KDBM, kprop."""

    def __init__(
        self,
        net: Network,
        name: str,
        master_password: str = "master-password",
        seed: bytes = b"realm-seed",
        n_slaves: int = 0,
        host_prefix: Optional[str] = None,
        kdc_workers: Optional[int] = None,
        kdc_queue=None,
    ) -> None:
        self.net = net
        self.name = name
        prefix = host_prefix if host_prefix is not None else name.split(".")[0].lower()
        self.keygen = KeyGenerator(seed=seed + name.encode())
        #: Concurrent-service-loop sizing applied to every KDC in the
        #: realm (master and slaves); None keeps the inline handler.
        self.kdc_workers = kdc_workers
        self.kdc_queue = kdc_queue

        # Mirror key-schedule cache traffic into this world's registry as
        # crypto.keyschedule_total{result=hit|miss}, and two-lane kernel
        # traffic as crypto.interleaved_blocks_total (idempotent per
        # registry; both caches/counters are process-wide).
        keycache.attach_metrics(net.metrics)
        modes.attach_metrics(net.metrics)

        # Initialize the database and essential principals.
        self.db = kdb_init(
            name, master_password, self.keygen, now=net.clock.now()
        )
        self.acl = AccessControlList()
        #: Bumped on slave promotion so the new master's update journal
        #: starts a fresh epoch — slaves then take a full dump rather
        #: than mistaking the new history for the old one.
        self._master_generation = 0

        # Start the master's servers.
        self.master_host = net.add_host(f"{prefix}-kerberos")
        self.kdc = KerberosServer(
            self.db,
            self.keygen.fork(b"kdc-master"),
            workers=self.kdc_workers,
            queue=self.kdc_queue,
        ).attach(self.master_host)
        self.kdbm = KdbmServer(self.db, self.acl).attach(self.master_host)

        # Slaves with propagation.
        self.slaves: List[SlaveSite] = []
        self.kprop = Kprop(self.db, self.master_host, slave_addresses=[])
        for i in range(n_slaves):
            self.add_slave(f"{prefix}-kerberos-{i + 1}")
        if n_slaves:
            self.kprop.propagate()  # initial full dump to all slaves

        self._service_keys: Dict[str, DesKey] = {}
        self._ws_count = 0
        #: Every workstation built via :meth:`workstation`, so discovery
        #: re-pointing after a promotion can reach all of them.
        self.workstations: List[Workstation] = []
        #: Optional Hesiod server publishing this realm's KDC list (see
        #: :meth:`publish_kdcs`); republished on :meth:`repoint_clients`.
        self.hesiod = None

    # -- topology ---------------------------------------------------------------

    def add_slave(self, hostname: str) -> SlaveSite:
        host = self.net.add_host(hostname)
        slave_db = self.db.replica()
        kdc = KerberosServer(
            slave_db,
            self.keygen.fork(hostname.encode()),
            workers=self.kdc_workers,
            queue=self.kdc_queue,
        ).attach(host)
        kpropd = Kpropd(slave_db).attach(host)
        site = SlaveSite(host=host, db=slave_db, kdc=kdc, kpropd=kpropd)
        self.slaves.append(site)
        self.kprop.add_slave(host.address)
        return site

    def kdc_addresses(self) -> List[IPAddress]:
        """Master first, then slaves — the client failover list."""
        return [self.master_host.address] + [s.host.address for s in self.slaves]

    def workstation(
        self,
        hostname: Optional[str] = None,
        clock_skew: float = 0.0,
        retry_policy=None,
    ) -> Workstation:
        """A public workstation with the client library configured.  The
        KDC list is master-first with every slave behind it, so the
        client fails over exactly as Figure 10 prescribes; pass a
        :class:`repro.core.retry.RetryPolicy` to shape retransmission
        (deadline, backoff) under injected faults."""
        if hostname is None:
            self._ws_count += 1
            hostname = f"ws{self._ws_count}"
        host = self.net.add_host(hostname, clock_skew=clock_skew)
        client = KerberosClient(
            host, self.name, self.kdc_addresses(), retry_policy=retry_policy
        )
        ws = Workstation(host=host, client=client)
        self.workstations.append(ws)
        return ws

    def partition_master(self):
        """Cut the master off from everyone (Figure 10's "the master
        machine is down" as seen from the network).  Slaves keep
        answering AS/TGS requests; admin writes fail until
        :meth:`repro.netsim.network.Network.heal`."""
        return self.net.partition([self.master_host.name])

    # -- registration (the administrator's ongoing job) ----------------------------

    def add_user(
        self,
        username: str,
        password: str,
        instance: str = "",
        max_life: float = DEFAULT_MAX_LIFE,
    ) -> Principal:
        principal = Principal(username, instance, self.name)
        self.db.add_principal(
            principal,
            password=password,
            now=self.net.clock.now(),
            max_life=max_life,
        )
        return principal

    def add_admin(self, username: str, admin_password: str) -> Principal:
        return register_essential_admin(
            self.db, self.acl, username, admin_password, now=self.net.clock.now()
        )

    def add_service(
        self,
        name: str,
        instance: str,
        max_life: float = DEFAULT_MAX_LIFE,
    ) -> Tuple[Principal, DesKey]:
        """Register a service with a random key (Section 6.3) and keep the
        key for srvtab extraction."""
        service = Principal(name, instance, self.name)
        key = register_service(
            self.db, service, self.keygen,
            now=self.net.clock.now(), max_life=max_life,
        )
        self._service_keys[str(service)] = key
        return service, key

    def srvtab_for(self, *services: Principal) -> SrvTab:
        """Extract and parse the srvtab a server machine would install."""
        return SrvTab.from_bytes(ext_srvtab(self.db, list(services)))

    def rotate_service_key(
        self, service: Principal, srvtab: Optional[SrvTab] = None
    ) -> DesKey:
        """Change a service's key (new kvno) and, if its srvtab is given,
        install the new version alongside the old ones — so tickets
        sealed under previous keys keep working until they expire."""
        new_key = self.keygen.session_key()
        record = self.db.change_key(
            service, new_key=new_key, now=self.net.clock.now(),
            mod_by="ksrvutil",
        )
        self._service_keys[str(service)] = new_key
        if srvtab is not None:
            srvtab.install(service, record.key_version, new_key)
        return new_key

    def service_key(self, service: Principal) -> DesKey:
        return self._service_keys[str(service)]

    # -- operations ------------------------------------------------------------------

    def propagate(self, full: bool = False):
        """Run one kprop round to all slaves: deltas where the journal
        can supply them, full Figure 13 dumps otherwise (``full=True``
        forces full dumps everywhere)."""
        return self.kprop.propagate(full=full)

    def promote_slave(
        self, index: int = 0, demote_old: bool = False
    ) -> SlaveSite:
        """Disaster recovery: turn a slave into the new master.

        The procedure an Athena administrator would run after losing the
        master machine for good: take the slave's (propagated) database
        copy, open it read-write with the master key — which every
        Kerberos machine possesses (Section 5.3) — and start the
        write-side services (KDBM, kprop) on that host.  The old master,
        if it ever returns, must be rebuilt as a slave.

        With ``demote_old=True`` (what the realm supervisor passes) the
        rebuild happens now: the old master's KDBM retires, its KDC is
        re-pointed at an empty read-only replica of the new master's
        database, and a fresh kpropd joins the propagation set — so when
        the machine restarts it answers the first delta with NEED_FULL
        and catches up through the ordinary full-dump-then-deltas path,
        with no second epoch conflict.

        Returns the promoted site; ``self.master_host``/``kdbm``/``kprop``
        are repointed.  Clients keep working throughout: their KDC lists
        already include the promoted host.
        """
        old_master_host = self.master_host
        old_kdc = self.kdc
        old_kdbm = self.kdbm
        site = self.slaves.pop(index)
        # Reopen the slave's store read-write under the same master key.
        # The promoted journal starts a new epoch: its sequence numbers
        # are not a continuation of the lost master's.
        self._master_generation += 1
        promoted_db = KerberosDatabase(
            self.name,
            self.db.master_key,
            store=site.db.store,
            journal_epoch=default_epoch(self.name, self._master_generation),
        )
        site.kdc.db = promoted_db
        site.db = promoted_db
        # The write-side services move to the new master.
        site.kpropd.detach()  # kpropd retires; this host now sends dumps
        self.db = promoted_db
        self.master_host = site.host
        self.kdc = site.kdc
        self.kdbm = KdbmServer(promoted_db, self.acl).attach(site.host)
        self.kprop = Kprop(
            promoted_db, site.host,
            slave_addresses=[s.host.address for s in self.slaves],
        )
        if demote_old:
            self._demote_to_slave(old_master_host, old_kdc, old_kdbm)
        return site

    def _demote_to_slave(self, host: Host, kdc, kdbm) -> SlaveSite:
        """Rebuild the (usually dead) old master as a slave of the new
        one.  Bindings are mutable while a host is down, so this runs at
        promotion time; the machine comes back already wearing its new
        role and catches up via NEED_FULL → full dump → deltas."""
        if kdbm.attached:
            kdbm.detach()  # writes only ever land on the current master
        replica = self.db.replica()
        kdc.db = replica
        kpropd = Kpropd(replica).attach(host)
        site = SlaveSite(host=host, db=replica, kdc=kdc, kpropd=kpropd)
        self.slaves.append(site)
        self.kprop.add_slave(host.address)
        return site

    def repoint_clients(self) -> None:
        """Push the current KDC list (master first) to every workstation
        this realm built, and republish it through Hesiod if attached —
        the discovery update that makes ``run_with_failover`` find the
        new master after a promotion."""
        addresses = self.kdc_addresses()
        for ws in self.workstations:
            ws.client.set_kdcs(self.name, addresses)
        if self.hesiod is not None:
            self.hesiod.set_kdc_list(self.name, addresses)

    def publish_kdcs(self, hesiod) -> None:
        """Register a :class:`~repro.apps.hesiod.HesiodServer` as this
        realm's discovery channel and publish the current KDC list."""
        self.hesiod = hesiod
        hesiod.set_kdc_list(self.name, self.kdc_addresses())

    def schedule_propagation(self, interval: Optional[float] = None) -> None:
        """The paper's cadence: periodic full dumps (hourly by default).

        Scheduled against ``self.kprop`` *at fire time*, so a cadence
        installed before a promotion keeps driving whichever kprop is
        current — not the dead master's."""
        period = HOUR if interval is None else interval
        self.net.clock.call_every(
            period, lambda: self.kprop.propagate(full=True)
        )

    def schedule_incremental(self, interval: float = 30.0) -> None:
        """The fast cadence: delta rounds every ``interval`` seconds,
        alongside (not instead of) the hourly full dump.  Resolves
        ``self.kprop`` at fire time, like :meth:`schedule_propagation`."""
        self.net.clock.call_every(interval, lambda: self.kprop.propagate())


def link(realm_a: Realm, realm_b: Realm, now: Optional[float] = None) -> DesKey:
    """Exchange an inter-realm key between two realms (Section 7.2) and
    re-propagate so slaves learn it too."""
    key = link_realms(
        realm_a.db,
        realm_b.db,
        realm_a.keygen.fork(b"interrealm" + realm_b.name.encode()),
        now=now if now is not None else realm_a.net.clock.now(),
    )
    for realm in (realm_a, realm_b):
        if realm.slaves:
            realm.propagate()
    return key
