"""Realm assembly (the Section 6.3 administrator's checklist, automated).

*"The Kerberos administrator's job begins with running a program to
initialize the database.  Another program must be run to register
essential principals ...  The Kerberos authentication server and the
administration server must be started up.  If there are slave databases,
the administrator must arrange that the programs to propagate database
updates from master to slaves be kicked off periodically."*

:class:`Realm` performs exactly those steps against a simulated network
and exposes the running parts for tests, examples, and benchmarks.

Topology is declarative (PR 9): a :class:`RealmTopology` names how many
**shards** partition the principal database, how many slaves each shard
runs, and how each KDC's worker pool is sized.  The classic keyword
signature (``n_slaves=2``) remains as a shim that builds a one-shard
topology, so ``Realm(...)`` and
:class:`~repro.realm.sharding.ShardedRealm` share this one bootstrap
path.  Every shard is a full master+slaves group — its own journal
epoch, its own KDBM, its own kprop fan-out — and the shard-0 group *is*
the classic realm (same host names, same epoch), which is why the
legacy ``realm.db`` / ``realm.kdc`` / ``realm.slaves`` accessors keep
working: they name shard 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.applib import SrvTab
from repro.core.client import KerberosClient
from repro.core.crossrealm import link_realms
from repro.core.kdc import KerberosServer
from repro.core.locator import StaticLocator, count_deprecated
from repro.crypto import DesKey, KeyGenerator, keycache
from repro.crypto import modes
from repro.database.acl import AccessControlList
from repro.database.admin_tools import (
    ext_srvtab,
    kdb_init,
    register_essential_admin,
    register_service,
)
from repro.database.db import MASTER_VERIFY_KEY, KerberosDatabase
from repro.database.journal import default_epoch
from repro.database.schema import DEFAULT_MAX_LIFE
from repro.kdbm.server import KdbmServer
from repro.netsim import Host, IPAddress, Network
from repro.netsim.clock import HOUR
from repro.principal import Principal
from repro.replication.kprop import Kprop
from repro.replication.kpropd import Kpropd


@dataclass
class RealmTopology:
    """Declarative realm shape: what to build, not how to build it.

    ``shards=1`` (the default) is the classic paper realm; more shards
    partition the principal database by name hash, each shard a full
    master+slaves group.  ``ring=True`` builds the consistent-hash ring
    machinery even for a single shard (what
    :class:`~repro.realm.sharding.ShardedRealm` uses so a one-shard
    realm can still grow by ``move_range``).
    """

    shards: int = 1
    slaves_per_shard: int = 0
    kdc_workers: Optional[int] = None
    kdc_queue: Optional[object] = None
    #: Virtual nodes per shard when seeding the ring.
    vnodes: int = 16
    #: Build ring/membership machinery even when ``shards == 1``.
    ring: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a realm needs at least one shard")
        if self.slaves_per_shard < 0:
            raise ValueError("slaves_per_shard must be non-negative")

    @property
    def sharded(self) -> bool:
        return self.shards > 1 or self.ring


@dataclass
class SlaveSite:
    """One slave machine: read-only DB copy + auth server + kpropd."""

    host: Host
    db: KerberosDatabase
    kdc: KerberosServer
    kpropd: Kpropd


@dataclass
class ShardSite:
    """One shard's master+slaves group: the unit promotion, propagation
    and rebalancing operate on.  Shard 0 of a one-shard realm is the
    classic paper realm."""

    id: int
    master_host: Host
    db: KerberosDatabase
    kdc: KerberosServer
    kdbm: KdbmServer
    kprop: Kprop
    slaves: List[SlaveSite] = field(default_factory=list)
    #: Bumped on slave promotion so the new master's journal starts a
    #: fresh epoch (slaves then take a full dump, never mistaking the
    #: new history for the old one).
    generation: int = 0
    #: The shard's :class:`~repro.realm.sharding.ShardMembership`
    #: (None in an unsharded realm).
    membership: Optional[object] = None
    #: The shard master's :class:`~repro.realm.sharding.RangeReceiver`
    #: (None in an unsharded realm).
    receiver: Optional[object] = None


@dataclass
class Workstation:
    """A user-controlled machine with its Kerberos client library."""

    host: Host
    client: KerberosClient


class Realm:
    """A running Kerberos realm: sharded principal database (one shard
    in the classic configuration), per-shard masters and slaves, KDBM,
    kprop."""

    def __init__(
        self,
        net: Network,
        name: str,
        master_password: str = "master-password",
        seed: bytes = b"realm-seed",
        n_slaves: int = 0,
        host_prefix: Optional[str] = None,
        kdc_workers: Optional[int] = None,
        kdc_queue=None,
        topology: Optional[RealmTopology] = None,
    ) -> None:
        self.net = net
        self.name = name
        prefix = host_prefix if host_prefix is not None else name.split(".")[0].lower()
        self._prefix = prefix
        if topology is None:
            # The classic keyword signature is a one-shard topology.
            topology = RealmTopology(
                shards=1,
                slaves_per_shard=n_slaves,
                kdc_workers=kdc_workers,
                kdc_queue=kdc_queue,
            )
        self.topology = topology
        self.keygen = KeyGenerator(seed=seed + name.encode())
        #: Concurrent-service-loop sizing applied to every KDC in the
        #: realm (masters and slaves); None keeps the inline handler.
        self.kdc_workers = topology.kdc_workers
        self.kdc_queue = topology.kdc_queue

        # Mirror key-schedule cache traffic into this world's registry as
        # crypto.keyschedule_total{result=hit|miss}, and two-lane kernel
        # traffic as crypto.interleaved_blocks_total (idempotent per
        # registry; both caches/counters are process-wide).
        keycache.attach_metrics(net.metrics)
        modes.attach_metrics(net.metrics)

        self.acl = AccessControlList()
        self.shards: List[ShardSite] = []
        #: Live ring + shard directory (None in an unsharded realm);
        #: locators snapshot these, memberships reference them.
        self.ring = None
        self.directory = None
        #: Keys replicated to *every* shard (K.M, krbtgt, kdbm, admins,
        #: services, inter-realm keys) — rebalancing never moves them.
        self._global_keys: set = set()

        for sid in range(topology.shards):
            self._build_shard(sid, master_password)

        if topology.sharded:
            from repro.realm import sharding as _sharding

            self.ring = _sharding.HashRing.seeded(
                name, topology.shards, vnodes=topology.vnodes
            )
            self.directory = _sharding.ShardDirectory()
            for site in self.shards:
                self.directory.set_shard(
                    site.id, self.shard_addresses(site.id)
                )
                site.membership = _sharding.ShardMembership(
                    site.id, self.ring, self.directory
                )
                site.kdc.shard = site.membership
                for slave in site.slaves:
                    slave.kdc.shard = site.membership
                site.receiver = _sharding.RangeReceiver(site.db).attach(
                    site.master_host
                )
            net.metrics.gauge(
                "shard.ring_epoch", {"realm": name}
            ).set(self.ring.epoch)

        self._service_keys: Dict[str, DesKey] = {}
        self._ws_count = 0
        #: Every workstation built via :meth:`workstation`, so discovery
        #: re-pointing after a promotion can reach all of them.
        self.workstations: List[Workstation] = []
        #: Optional Hesiod server publishing this realm's discovery
        #: records (see :meth:`attach_hesiod`); republished on
        #: :meth:`repoint_clients` and ring changes.
        self.hesiod = None

    # -- shard construction -------------------------------------------------------

    def _shard_host_name(self, sid: int, slave: Optional[int] = None) -> str:
        """Shard 0 keeps the classic names (``<prefix>-kerberos``,
        ``<prefix>-kerberos-1`` ...); further shards append ``-s<id>``."""
        base = (
            f"{self._prefix}-kerberos"
            if sid == 0
            else f"{self._prefix}-kerberos-s{sid}"
        )
        return base if slave is None else f"{base}-{slave}"

    def _shard_epoch_name(self, sid: int) -> str:
        """The realm name a shard's journal epoch derives from — shard 0
        keeps the realm's own (classic) epoch."""
        return self.name if sid == 0 else f"{self.name}/shard{sid}"

    def _build_shard(self, sid: int, master_password: str) -> ShardSite:
        if sid == 0:
            # Shard 0 runs kdb_init: it draws the realm's krbtgt and
            # kdbm keys from the keygen.
            db = kdb_init(
                self.name, master_password, self.keygen,
                now=self.net.clock.now(),
            )
            # Everything kdb_init created is realm-wide state (K.M,
            # krbtgt, the kdbm principal) — global, never rebalanced.
            self._global_keys.update(db.store.keys())
            keygen_fork = b"kdc-master"
        else:
            # Further shards must NOT re-run kdb_init (it would draw
            # *different* krbtgt/kdbm keys, breaking cross-shard TGT
            # validation); they share shard 0's master key and copy its
            # realm-wide records.
            shard0 = self.shards[0].db
            db = KerberosDatabase(
                self.name,
                shard0.master_key,
                journal_epoch=default_epoch(self._shard_epoch_name(sid)),
            )
            now = self.net.clock.now()
            for key in sorted(self._global_keys):
                if key == MASTER_VERIFY_KEY:
                    continue
                db.import_record(key, shard0.store.get(key), now=now)
            keygen_fork = f"kdc-shard{sid}".encode()

        master_host = self.net.add_host(self._shard_host_name(sid))
        kdc = KerberosServer(
            db,
            self.keygen.fork(keygen_fork),
            workers=self.kdc_workers,
            queue=self.kdc_queue,
        ).attach(master_host)
        kdbm = KdbmServer(db, self.acl).attach(master_host)
        site = ShardSite(
            id=sid,
            master_host=master_host,
            db=db,
            kdc=kdc,
            kdbm=kdbm,
            kprop=Kprop(db, master_host, slave_addresses=[]),
        )
        self.shards.append(site)
        for i in range(self.topology.slaves_per_shard):
            self.add_slave(self._shard_host_name(sid, i + 1), shard=sid)
        if site.slaves:
            site.kprop.propagate()  # initial full dump to all slaves
        return site

    # -- legacy single-shard accessors (shard 0 is the classic realm) --------------

    @property
    def db(self) -> KerberosDatabase:
        return self.shards[0].db

    @property
    def kdc(self) -> KerberosServer:
        return self.shards[0].kdc

    @property
    def kdbm(self) -> KdbmServer:
        return self.shards[0].kdbm

    @property
    def kprop(self) -> Kprop:
        return self.shards[0].kprop

    @property
    def master_host(self) -> Host:
        return self.shards[0].master_host

    @property
    def slaves(self) -> List[SlaveSite]:
        return self.shards[0].slaves

    # -- topology ---------------------------------------------------------------

    def add_slave(self, hostname: str, shard: int = 0) -> SlaveSite:
        site = self.shards[shard]
        host = self.net.add_host(hostname)
        slave_db = site.db.replica()
        kdc = KerberosServer(
            slave_db,
            self.keygen.fork(hostname.encode()),
            workers=self.kdc_workers,
            queue=self.kdc_queue,
            shard=site.membership,
        ).attach(host)
        kpropd = Kpropd(slave_db).attach(host)
        slave = SlaveSite(host=host, db=slave_db, kdc=kdc, kpropd=kpropd)
        site.slaves.append(slave)
        site.kprop.add_slave(host.address)
        if self.directory is not None:
            self.directory.set_shard(shard, self.shard_addresses(shard))
        return slave

    def shard_addresses(self, shard: int = 0) -> List[IPAddress]:
        """One shard's KDC list: its master first, then its slaves."""
        site = self.shards[shard]
        return [site.master_host.address] + [
            s.host.address for s in site.slaves
        ]

    def kdc_addresses(self) -> List[IPAddress]:
        """Every KDC in the realm, shard by shard, each shard's master
        first — the classic client failover list (and, for a sharded
        realm, the flat list legacy clients fall back to; the referral
        path corrects their routing)."""
        addresses: List[IPAddress] = []
        for site in self.shards:
            addresses.extend(self.shard_addresses(site.id))
        return addresses

    def locator(self):
        """A fresh locator answering this realm's current topology: a
        :class:`~repro.realm.sharding.ShardedLocator` over the live ring
        when sharded, a :class:`StaticLocator` otherwise."""
        if self.ring is not None:
            from repro.realm import sharding as _sharding

            return _sharding.ShardedLocator(_sharding.LocalRingSource(self))
        return StaticLocator(self.kdc_addresses())

    def workstation(
        self,
        hostname: Optional[str] = None,
        clock_skew: float = 0.0,
        retry_policy=None,
    ) -> Workstation:
        """A public workstation with the client library configured.  The
        client gets a :meth:`locator` for this realm — per-shard or
        master-first static — so it fails over exactly as Figure 10
        prescribes; pass a :class:`repro.core.retry.RetryPolicy` to
        shape retransmission (deadline, backoff) under injected
        faults."""
        if hostname is None:
            self._ws_count += 1
            hostname = f"ws{self._ws_count}"
        host = self.net.add_host(hostname, clock_skew=clock_skew)
        client = KerberosClient(
            host, self.name, locator=self.locator(),
            retry_policy=retry_policy,
        )
        ws = Workstation(host=host, client=client)
        self.workstations.append(ws)
        return ws

    def partition_master(self):
        """Cut the (shard-0) master off from everyone (Figure 10's "the
        master machine is down" as seen from the network).  Slaves keep
        answering AS/TGS requests; admin writes fail until
        :meth:`repro.netsim.network.Network.heal`."""
        return self.net.partition([self.master_host.name])

    # -- registration (the administrator's ongoing job) ----------------------------

    def shard_for_key(self, db_key: str) -> int:
        """Which shard owns a principal database key (0 when unsharded)."""
        if self.ring is None or db_key in self._global_keys:
            return 0
        return self.ring.shard_for(db_key)

    def db_for_key(self, db_key: str) -> KerberosDatabase:
        return self.shards[self.shard_for_key(db_key)].db

    def is_global_key(self, key: str) -> bool:
        """Replicated-everywhere keys: excluded from rebalancing."""
        return key == MASTER_VERIFY_KEY or key in self._global_keys

    def _adopt_globals(self, keys: Iterable[str]) -> None:
        """Mark keys realm-wide and copy their (shard-0) records to
        every other shard."""
        keys = [k for k in keys if k != MASTER_VERIFY_KEY]
        self._global_keys.update(keys)
        if len(self.shards) == 1:
            return
        now = self.net.clock.now()
        shard0 = self.shards[0].db
        for site in self.shards[1:]:
            for key in keys:
                raw = shard0.store.get(key)
                if raw is not None:
                    site.db.import_record(key, raw, now=now)

    def add_user(
        self,
        username: str,
        password: str,
        instance: str = "",
        max_life: float = DEFAULT_MAX_LIFE,
    ) -> Principal:
        """Register a user on the shard its name hashes to."""
        principal = Principal(username, instance, self.name)
        self.db_for_key(principal.db_key()).add_principal(
            principal,
            password=password,
            now=self.net.clock.now(),
            max_life=max_life,
        )
        return principal

    def add_admin(self, username: str, admin_password: str) -> Principal:
        """Admins are realm-wide: registered on shard 0, replicated to
        every shard (any shard's KDBM must be able to verify them)."""
        principal = register_essential_admin(
            self.db, self.acl, username, admin_password, now=self.net.clock.now()
        )
        self._adopt_globals([principal.db_key()])
        return principal

    def add_service(
        self,
        name: str,
        instance: str,
        max_life: float = DEFAULT_MAX_LIFE,
    ) -> Tuple[Principal, DesKey]:
        """Register a service with a random key (Section 6.3) and keep the
        key for srvtab extraction.  Service records are realm-wide: a TGS
        request can land on any shard, so every shard must hold the
        service key."""
        service = Principal(name, instance, self.name)
        key = register_service(
            self.db, service, self.keygen,
            now=self.net.clock.now(), max_life=max_life,
        )
        self._service_keys[str(service)] = key
        self._adopt_globals([service.db_key()])
        return service, key

    def srvtab_for(self, *services: Principal) -> SrvTab:
        """Extract and parse the srvtab a server machine would install."""
        return SrvTab.from_bytes(ext_srvtab(self.db, list(services)))

    def rotate_service_key(
        self, service: Principal, srvtab: Optional[SrvTab] = None
    ) -> DesKey:
        """Change a service's key (new kvno) and, if its srvtab is given,
        install the new version alongside the old ones — so tickets
        sealed under previous keys keep working until they expire."""
        new_key = self.keygen.session_key()
        record = self.db.change_key(
            service, new_key=new_key, now=self.net.clock.now(),
            mod_by="ksrvutil",
        )
        self._service_keys[str(service)] = new_key
        self._adopt_globals([service.db_key()])
        if srvtab is not None:
            srvtab.install(service, record.key_version, new_key)
        return new_key

    def service_key(self, service: Principal) -> DesKey:
        return self._service_keys[str(service)]

    # -- operations ------------------------------------------------------------------

    def propagate(self, full: bool = False):
        """Run one kprop round on every shard that has slaves: deltas
        where the journal can supply them, full Figure 13 dumps
        otherwise (``full=True`` forces full dumps everywhere)."""
        results = [
            site.kprop.propagate(full=full)
            for site in self.shards
            if site.slaves
        ]
        return results[0] if len(results) == 1 else results

    def promote_slave(
        self, index: int = 0, demote_old: bool = False, shard: int = 0
    ) -> SlaveSite:
        """Disaster recovery: turn one shard's slave into that shard's
        new master.

        The procedure an Athena administrator would run after losing a
        master machine for good: take the slave's (propagated) database
        copy, open it read-write with the master key — which every
        Kerberos machine possesses (Section 5.3) — and start the
        write-side services (KDBM, kprop, and in a sharded realm the
        range receiver) on that host.  The old master, if it ever
        returns, must be rebuilt as a slave.

        With ``demote_old=True`` (what the realm supervisor passes) the
        rebuild happens now: the old master's KDBM retires, its KDC is
        re-pointed at an empty read-only replica of the new master's
        database, and a fresh kpropd joins the propagation set — so when
        the machine restarts it answers the first delta with NEED_FULL
        and catches up through the ordinary full-dump-then-deltas path,
        with no second epoch conflict.

        Promotion is **shard-scoped**: only this shard's bindings, its
        directory entry, and its Hesiod shard record change; every other
        shard's clients and records are untouched.

        Returns the promoted site; the shard's
        ``master_host``/``kdbm``/``kprop`` are repointed.  Clients keep
        working throughout: their failover lists already include the
        promoted host.
        """
        site = self.shards[shard]
        old_master_host = site.master_host
        old_kdc = site.kdc
        old_kdbm = site.kdbm
        old_receiver = site.receiver
        promoted = site.slaves.pop(index)
        # Reopen the slave's store read-write under the same master key.
        # The promoted journal starts a new epoch: its sequence numbers
        # are not a continuation of the lost master's.
        site.generation += 1
        promoted_db = KerberosDatabase(
            self.name,
            site.db.master_key,
            store=promoted.db.store,
            journal_epoch=default_epoch(
                self._shard_epoch_name(shard), site.generation
            ),
        )
        promoted.kdc.db = promoted_db
        # The write-side services move to the new master.
        promoted.kpropd.detach()  # kpropd retires; this host now sends dumps
        site.db = promoted_db
        site.master_host = promoted.host
        site.kdc = promoted.kdc
        site.kdbm = KdbmServer(promoted_db, self.acl).attach(promoted.host)
        site.kprop = Kprop(
            promoted_db, promoted.host,
            slave_addresses=[s.host.address for s in site.slaves],
        )
        if site.membership is not None:
            from repro.realm import sharding as _sharding

            if old_receiver is not None and old_receiver.attached:
                old_receiver.detach()
            site.receiver = _sharding.RangeReceiver(promoted_db).attach(
                promoted.host
            )
            self.directory.set_shard(shard, self.shard_addresses(shard))
        if demote_old:
            self._demote_to_slave(site, old_master_host, old_kdc, old_kdbm)
        return promoted

    def _demote_to_slave(
        self, site: ShardSite, host: Host, kdc, kdbm
    ) -> SlaveSite:
        """Rebuild the (usually dead) old master as a slave of its
        shard's new one.  Bindings are mutable while a host is down, so
        this runs at promotion time; the machine comes back already
        wearing its new role and catches up via NEED_FULL → full dump →
        deltas."""
        if kdbm.attached:
            kdbm.detach()  # writes only ever land on the current master
        replica = site.db.replica()
        kdc.db = replica
        kpropd = Kpropd(replica).attach(host)
        slave = SlaveSite(host=host, db=replica, kdc=kdc, kpropd=kpropd)
        site.slaves.append(slave)
        site.kprop.add_slave(host.address)
        if self.directory is not None:
            self.directory.set_shard(site.id, self.shard_addresses(site.id))
        return slave

    # -- discovery --------------------------------------------------------------------

    def repoint_clients(self, shard: Optional[int] = None) -> None:
        """Push the current KDC topology to every workstation this realm
        built, and republish through Hesiod if attached — the discovery
        update that makes ``run_with_failover`` find a new master after
        a promotion.

        In a sharded realm pass ``shard`` to scope the update: only that
        shard's Hesiod record is rewritten (the ring did not change),
        and clients refresh their snapshots.
        """
        for ws in self.workstations:
            locator = ws.client.locator_for(self.name)
            if isinstance(locator, StaticLocator):
                locator.set_addresses(self.kdc_addresses())
            elif locator is not None:
                locator.refresh()
            else:
                ws.client.set_locator(self.name, self.locator())
        if self.hesiod is not None:
            self._publish_hesiod(shard=shard)

    def attach_hesiod(self, hesiod) -> None:
        """Register a :class:`~repro.apps.hesiod.HesiodServer` as this
        realm's discovery channel and publish the current records: the
        flat ``_kerberos`` KDC list, and for a sharded realm the ring
        descriptor plus per-shard lists."""
        self.hesiod = hesiod
        self._publish_hesiod()

    def publish_kdcs(self, hesiod) -> None:
        """Deprecated shim (one release) for :meth:`attach_hesiod`;
        callers are counted in ``api.deprecated_calls_total``."""
        count_deprecated(self.net.metrics, "Realm.publish_kdcs")
        self.attach_hesiod(hesiod)

    def _publish_hesiod(self, shard: Optional[int] = None) -> None:
        if shard is None:
            self.hesiod.store_kdc_list(self.name, self.kdc_addresses())
        if self.ring is not None:
            self.hesiod.store_ring(self.ring.to_record(self.name))
            targets = self.shards if shard is None else [self.shards[shard]]
            for site in targets:
                self.hesiod.store_shard_kdc_list(
                    self.name, site.id, self.shard_addresses(site.id)
                )
            if shard is not None:
                # The flat legacy list names every shard's KDCs, so a
                # shard-scoped promotion still refreshes it.
                self.hesiod.store_kdc_list(self.name, self.kdc_addresses())

    def republish_ring(self) -> None:
        """Push the current ring + shard records to Hesiod (after a ring
        change, e.g. a completed ``move_range``).  No-op without an
        attached Hesiod — local locators read the realm directly."""
        if self.hesiod is not None:
            self._publish_hesiod()

    # -- propagation cadence -----------------------------------------------------------

    def schedule_propagation(self, interval: Optional[float] = None) -> None:
        """The paper's cadence: periodic full dumps (hourly by default).

        Scheduled against the shards' current kprops *at fire time*, so
        a cadence installed before a promotion keeps driving whichever
        kprop is current — not the dead master's."""
        period = HOUR if interval is None else interval
        self.net.clock.call_every(period, lambda: self.propagate(full=True))

    def schedule_incremental(self, interval: float = 30.0) -> None:
        """The fast cadence: delta rounds every ``interval`` seconds,
        alongside (not instead of) the hourly full dump.  Resolves the
        current kprops at fire time, like :meth:`schedule_propagation`."""
        self.net.clock.call_every(interval, lambda: self.propagate())


def link(realm_a: Realm, realm_b: Realm, now: Optional[float] = None) -> DesKey:
    """Exchange an inter-realm key between two realms (Section 7.2) and
    re-propagate so slaves learn it too.  Inter-realm keys are
    realm-wide state: in a sharded realm every shard's TGS must be able
    to unseal remote-realm TGTs, so the new records replicate to all
    shards."""
    before_a = set(realm_a.db.store.keys())
    before_b = set(realm_b.db.store.keys())
    key = link_realms(
        realm_a.db,
        realm_b.db,
        realm_a.keygen.fork(b"interrealm" + realm_b.name.encode()),
        now=now if now is not None else realm_a.net.clock.now(),
    )
    realm_a._adopt_globals(set(realm_a.db.store.keys()) - before_a)
    realm_b._adopt_globals(set(realm_b.db.store.keys()) - before_b)
    for realm in (realm_a, realm_b):
        if any(site.slaves for site in realm.shards):
            realm.propagate()
    return key
