"""The realm supervisor: failure detection and automatic promotion.

The paper's deployment survives a master outage only because a human
notices: authentication keeps working off the slaves (Figure 10), but
administration stops (Figure 11) and stays stopped until an operator
rebuilds a master by hand.  This module closes that loop.

:class:`RealmSupervisor` is a monitoring daemon — an ordinary
:class:`~repro.core.service.Service` on its own host — that heartbeats
every KDC in the realm on the simulated clock.  A heartbeat is a real
AS exchange: a well-formed ``AS_REQ`` for a sentinel principal the
database does not contain, so a *live* KDC always answers (with a
principal-unknown error), while a dead, partitioned, or wedged one
answers nothing.  Probing through the front door means the supervisor
measures exactly what clients experience, not a side-channel's opinion.

On :data:`SupervisorConfig.failure_threshold` consecutive missed master
heartbeats the supervisor promotes the **freshest** healthy slave — the
one with the most recent applied-update time, i.e. the lowest
``repl.slave_lag_seconds`` — via
:meth:`~repro.realm.bootstrap.Realm.promote_slave` (journal epoch bump,
``demote_old=True``), then re-points client discovery
(:meth:`~repro.realm.bootstrap.Realm.repoint_clients`, including the
realm's Hesiod record if published).  The old master is rebuilt as a
slave at promotion time, so when it restarts it catches up through the
ordinary NEED_FULL → full dump → delta path; the supervisor keeps
probing it and emits a ``slave_rejoined`` audit event on its first
answered heartbeat.

Flapping protection: at most one promotion per
:data:`SupervisorConfig.dwell_time` simulated seconds — a realm that
lost two masters inside the dwell window needs an operator, not an
oscillator.

Observability: ``supervisor.heartbeats_total{target,result}``,
``realm.promotions_total{realm}``,
``realm.time_to_recover_seconds{realm}`` (first missed heartbeat →
promotion complete), ``supervisor.promotions_suppressed_total{realm}``,
plus ``master_promoted`` / ``slave_rejoined`` audit events joined to
the supervisor's trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.messages import AsRequest, MessageType, encode_message
from repro.core.service import Service
from repro.netsim import IPAddress, NetworkError
from repro.netsim.ports import KERBEROS_PORT
from repro.principal import Principal, tgs_principal


@dataclass
class SupervisorConfig:
    """Tuning knobs for the failure detector.

    The defaults suit campus-scale drills: with 5-second heartbeats and
    a threshold of 3, a dead master is detected within 15 simulated
    seconds — comfortably inside a login-storm SLO — while a single
    lost probe (one miss) never triggers anything.
    """

    #: Seconds of simulated time between heartbeat rounds.
    heartbeat_interval: float = 5.0
    #: Consecutive missed master heartbeats before promotion.
    failure_threshold: int = 3
    #: Minimum simulated seconds between promotions (flap protection).
    dwell_time: float = 120.0
    #: How long one probe waits for an answer before counting a miss.
    probe_timeout: float = 2.0
    #: Sentinel principal name probed at each heartbeat; deliberately
    #: unregistered, so a live KDC answers with a typed error.
    probe_principal: str = "hbmon"
    #: False turns the supervisor into a pure detector (no promotion) —
    #: useful for drills that only want the heartbeat telemetry.
    promote: bool = True


class RealmSupervisor(Service):
    """Heartbeat failure detector + automatic slave promotion."""

    def __init__(
        self, realm, config: Optional[SupervisorConfig] = None
    ) -> None:
        super().__init__()
        self.realm = realm
        self.config = config if config is not None else SupervisorConfig()
        #: Consecutive missed heartbeats, per probed address.
        self.misses: Dict[IPAddress, int] = {}
        #: When each currently-suspect address first missed (sim time).
        self._suspect_since: Dict[IPAddress, float] = {}
        #: Old-master addresses demoted by a promotion, watched for
        #: their first answered heartbeat (→ ``slave_rejoined``).
        self._awaiting_rejoin: Set[IPAddress] = set()
        self._last_promotion_at = float("-inf")
        self._tick_event = None
        self.promotions = 0

    # -- lifecycle ----------------------------------------------------------

    def ports(self):
        # A pure client daemon: it probes, it never serves.
        return {}

    def on_attach(self) -> None:
        net = self.host.network
        self.metrics = net.metrics
        self.tracer = net.tracer
        self.audit = net.audit
        self._schedule_next()

    def on_detach(self) -> None:
        self._cancel_tick()

    def on_crash(self) -> None:
        # The monitor machine itself died; its timer state is volatile.
        self._cancel_tick()

    def on_restart(self) -> None:
        # Fresh detector state: stale suspicion from before the crash
        # must not trigger an instant promotion on reboot.
        self.misses.clear()
        self._suspect_since.clear()
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._tick_event = self.host.network.runtime.after(
            self.config.heartbeat_interval, self._tick,
            label="supervisor.tick",
        )

    def _cancel_tick(self) -> None:
        if self._tick_event is not None:
            self.host.network.runtime.cancel(self._tick_event)
            self._tick_event = None

    # -- the heartbeat round ------------------------------------------------

    def _tick(self) -> None:
        self._tick_event = None
        if self.host is None or not self.host.up:
            return
        with self.tracer.span("supervisor.tick", host=self.host.name):
            self._round()
        self._schedule_next()

    def _round(self) -> None:
        """Heartbeat every shard's master and slaves.  Failure detection
        and promotion are shard-scoped: a dead shard-2 master triggers a
        promotion *within shard 2* and repoints only that shard's
        discovery records."""
        realm = self.realm
        for site in realm.shards:
            master_addr = site.master_host.address
            targets = [(master_addr, site.master_host.name, "master")] + [
                (s.host.address, s.host.name, "slave") for s in site.slaves
            ]
            for address, name, role in targets:
                alive = self._probe(address)
                self.metrics.counter(
                    "supervisor.heartbeats_total",
                    {"target": name, "result": "ok" if alive else "miss"},
                ).inc()
                if alive:
                    self.misses[address] = 0
                    self._suspect_since.pop(address, None)
                    if address in self._awaiting_rejoin:
                        self._awaiting_rejoin.discard(address)
                        self.audit.emit(
                            "slave_rejoined",
                            host=name,
                            trace=self.tracer.propagation_context(),
                            detail=(
                                "demoted former master answered its first "
                                "heartbeat; catching up as a slave"
                            ),
                        )
                else:
                    self.misses[address] = self.misses.get(address, 0) + 1
                    self._suspect_since.setdefault(
                        address, self.host.clock.now()
                    )
            if (
                self.config.promote
                and self.misses.get(master_addr, 0)
                >= self.config.failure_threshold
            ):
                self._promote(master_addr, shard=site.id)

    def _probe(self, address: IPAddress) -> bool:
        """One front-door heartbeat: any reply — including a typed error
        for the sentinel principal — means the KDC is serving."""
        request = AsRequest(
            client=Principal(
                self.config.probe_principal, "", self.realm.name
            ),
            service=tgs_principal(self.realm.name),
            requested_life=60.0,
            timestamp=self.host.clock.now(),
        )
        wire = encode_message(MessageType.AS_REQ, request)
        try:
            self.host.network.rpc(
                self.host, address, KERBEROS_PORT, wire,
                timeout=self.config.probe_timeout,
            )
            return True
        except NetworkError:
            return False

    # -- promotion ----------------------------------------------------------

    def _promote(self, master_addr: IPAddress, shard: int = 0) -> None:
        now = self.host.clock.now()
        realm = self.realm
        shard_site = realm.shards[shard]
        if now - self._last_promotion_at < self.config.dwell_time:
            self.metrics.counter(
                "supervisor.promotions_suppressed_total",
                {"realm": realm.name},
            ).inc()
            return
        # The freshest *healthy* slave of the failed shard: most recent
        # applied-update time as reported to the dying master's kprop
        # (the same definition as repl.slave_lag_seconds), index as a
        # deterministic tie-break.  A slave currently missing heartbeats
        # is not a candidate, however fresh its copy.
        candidates = [
            (index, site)
            for index, site in enumerate(shard_site.slaves)
            if self.misses.get(site.host.address, 0) == 0
        ]
        if not candidates:
            self.metrics.counter(
                "supervisor.promotions_suppressed_total",
                {"realm": realm.name},
            ).inc()
            return
        applied = shard_site.kprop.last_applied_time
        index, site = max(
            candidates,
            key=lambda pair: (
                applied.get(pair[1].host.address, float("-inf")),
                -pair[0],
            ),
        )
        old_master_name = shard_site.master_host.name
        missed = self.misses.get(master_addr, 0)
        suspect_since = self._suspect_since.get(master_addr, now)
        with self.tracer.span(
            "supervisor.promote",
            host=self.host.name,
            old_master=old_master_name,
            new_master=site.host.name,
        ):
            realm.promote_slave(index, demote_old=True, shard=shard)
            # Shard-scoped repoint: only the failed shard's Hesiod
            # record is rewritten; other shards' discovery is untouched.
            realm.repoint_clients(
                shard=shard if realm.ring is not None else None
            )
            ttr = self.host.clock.now() - suspect_since
            self.metrics.counter(
                "realm.promotions_total", {"realm": realm.name}
            ).inc()
            self.metrics.gauge(
                "realm.time_to_recover_seconds", {"realm": realm.name}
            ).set(ttr)
            self.audit.emit(
                "master_promoted",
                host=site.host.name,
                trace=self.tracer.propagation_context(),
                detail=(
                    f"promoted {site.host.name} after {old_master_name} "
                    f"missed {missed} heartbeats; ttr={ttr:.3f}s"
                ),
            )
        self.promotions += 1
        self._last_promotion_at = self.host.clock.now()
        # The old master is now the realm's newest slave; watch it for
        # its comeback, and judge it fresh from a clean slate.
        self._awaiting_rejoin.add(master_addr)
        self.misses.pop(master_addr, None)
        self._suspect_since.pop(master_addr, None)


__all__ = ["RealmSupervisor", "SupervisorConfig"]
