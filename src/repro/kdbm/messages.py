"""Wire format of the administration protocol (paper Figure 12).

A KDBM request is two pieces:

1. an :class:`repro.core.messages.ApRequest` authenticating the
   requester to the ``changepw.kerberos`` service — with a ticket that
   can only have come from the *authentication service*, i.e. only by
   entering a password (Section 5.1);
2. an operation, sealed as a private message in the session key —
   passwords travel the network encrypted ("using fairly high security
   measures", Section 2.2).

Replies are private messages too, so eavesdroppers learn nothing about
outcomes either.
"""

from __future__ import annotations

import enum

from repro.encode import WireStruct, field
from repro.principal import Principal


class AdminOperation(enum.IntEnum):
    CHANGE_PASSWORD = 1   # kpasswd, or kadmin cpw
    ADD_PRINCIPAL = 2     # kadmin ank
    GET_ENTRY = 3         # kadmin get (no secrets returned)


class AdminRequestBody(WireStruct):
    """The operation, carried inside a private message."""

    FIELDS = (
        field("operation", "u8"),
        field("target", Principal),
        field("new_password", "string"),   # empty for GET_ENTRY
        field("max_life", "f64"),          # ADD_PRINCIPAL only; 0 = default
    )


class KdbmRequest(WireStruct):
    """The datagram sent to the KDBM port."""

    FIELDS = (
        field("ap_request", "bytes"),   # encoded ApRequest
        field("private_body", "bytes"),  # encoded PrivMessage(AdminRequestBody)
    )


class AdminReplyBody(WireStruct):
    """The outcome, returned inside a private message."""

    FIELDS = (
        field("ok", "bool"),
        field("code", "u32"),
        field("text", "string"),
    )
