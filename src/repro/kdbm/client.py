"""Client side of the administration protocol (paper Figure 12).

The kpasswd and kadmin programs both work this way:

1. obtain a ticket for the KDBM service *via the authentication
   service* — which requires typing a password: the old password for
   kpasswd, the admin-instance password for kadmin ("An administrator is
   required to enter the password for their admin instance name when
   they invoke the kadmin program");
2. send the operation, sealed as a private message, with the ticket;
3. read the (private) reply.
"""

from __future__ import annotations

from typing import Optional

from repro.core.applib import krb_mk_req
from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.core.errors import ErrorCode, KerberosError
from repro.core.safe_priv import PrivMessage, krb_mk_priv, krb_rd_priv
from repro.kdbm.messages import (
    AdminOperation,
    AdminReplyBody,
    AdminRequestBody,
    KdbmRequest,
)
from repro.netsim import IPAddress
from repro.netsim.ports import KDBM_PORT
from repro.principal import Principal, kdbm_principal


class KdbmClient:
    """Speaks the admin protocol on behalf of kpasswd/kadmin."""

    def __init__(
        self,
        kerberos_client: KerberosClient,
        master_address,
        port: int = KDBM_PORT,
    ) -> None:
        self.krb = kerberos_client
        self.master_address = IPAddress(master_address)
        self.port = port

    def _kdbm_credential(
        self, principal: Principal, password: str
    ) -> Credential:
        """Get a KDBM ticket the only way possible: through the AS, with a
        password (Section 5.1's deliberate design)."""
        return self.krb.as_exchange(
            principal, password, kdbm_principal(self.krb.realm)
        )

    def _roundtrip(
        self, cred: Credential, client: Principal, body: AdminRequestBody
    ) -> AdminReplyBody:
        now = self.krb._auth_now()
        ap_request = krb_mk_req(
            ticket_blob=cred.ticket,
            session_key=cred.session_key,
            client=client,
            client_address=self.krb.host.address,
            now=now,
            kvno=cred.kvno,
        )
        private = krb_mk_priv(
            body.to_bytes(), cred.session_key, self.krb.host.address, now
        )
        request = KdbmRequest(
            ap_request=ap_request.to_bytes(),
            private_body=private.to_bytes(),
        )
        raw = self.krb.host.rpc(self.master_address, self.port, request.to_bytes())
        if not raw:
            raise KerberosError(
                ErrorCode.KDBM_ERROR,
                "KDBM dropped the request (authentication failed?)",
            )
        reply_data = krb_rd_priv(
            PrivMessage.from_bytes(raw),
            cred.session_key,
            expected_sender=self.master_address,
            now=self.krb.host.clock.now(),
        )
        return AdminReplyBody.from_bytes(reply_data)

    def _check(self, reply: AdminReplyBody) -> str:
        if not reply.ok:
            raise KerberosError(ErrorCode(reply.code), reply.text)
        return reply.text

    # -- the operations --------------------------------------------------------

    def change_password(
        self,
        principal: Principal,
        old_password: str,
        new_password: str,
    ) -> str:
        """kpasswd: users "are required to enter their old password when
        they invoke the program"."""
        cred = self._kdbm_credential(principal, old_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=principal,
            new_password=new_password,
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, principal, body))

    def admin_change_password(
        self,
        admin: Principal,
        admin_password: str,
        target: Principal,
        new_password: str,
    ) -> str:
        """kadmin cpw: an administrator resets someone else's password."""
        cred = self._kdbm_credential(admin, admin_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=target,
            new_password=new_password,
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, admin, body))

    def add_principal(
        self,
        admin: Principal,
        admin_password: str,
        target: Principal,
        initial_password: str,
        max_life: float = 0.0,
    ) -> str:
        """kadmin ank: register a new principal."""
        cred = self._kdbm_credential(admin, admin_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.ADD_PRINCIPAL),
            target=target,
            new_password=initial_password,
            max_life=max_life,
        )
        return self._check(self._roundtrip(cred, admin, body))

    def get_entry(
        self, principal: Principal, password: str, target: Optional[Principal] = None
    ) -> str:
        """kadmin get: inspect a database entry (no key material returned)."""
        cred = self._kdbm_credential(principal, password)
        body = AdminRequestBody(
            operation=int(AdminOperation.GET_ENTRY),
            target=target if target is not None else principal,
            new_password="",
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, principal, body))
