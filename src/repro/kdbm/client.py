"""Client side of the administration protocol (paper Figure 12).

The kpasswd and kadmin programs both work this way:

1. obtain a ticket for the KDBM service *via the authentication
   service* — which requires typing a password: the old password for
   kpasswd, the admin-instance password for kadmin ("An administrator is
   required to enter the password for their admin instance name when
   they invoke the kadmin program");
2. send the operation, sealed as a private message, with the ticket;
3. read the (private) reply.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.applib import krb_mk_req
from repro.core.client import KerberosClient
from repro.core.credcache import Credential
from repro.core.errors import ErrorCode, KerberosError, error_for_code
from repro.core.retry import RetryExhausted, RetryPolicy, run_with_failover
from repro.core.safe_priv import PrivMessage, krb_mk_priv, krb_rd_priv
from repro.kdbm.messages import (
    AdminOperation,
    AdminReplyBody,
    AdminRequestBody,
    KdbmRequest,
)
from repro.netsim import IPAddress, Unreachable
from repro.netsim.ports import KDBM_PORT
from repro.principal import Principal, kdbm_principal


class KdbmTimeout(KerberosError, Unreachable):
    """The KDBM did not answer within the retry policy.

    Distinct from the protocol-level "dropped the request" empty reply
    (which means the server *received* us and refused to authenticate):
    a timeout means the master is unreachable — admin writes cannot fail
    over to slaves, whose database copies are read-only (Figure 11), so
    the only honest outcome is this typed error with the attempt count.
    Also an :class:`~repro.netsim.network.Unreachable`, because that is
    what it is at the transport level (callers that handled the old
    generic failure keep working).
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(ErrorCode.KDBM_ERROR, message)
        self.attempts = attempts


class KdbmClient:
    """Speaks the admin protocol on behalf of kpasswd/kadmin."""

    def __init__(
        self,
        kerberos_client: KerberosClient,
        master_address,
        port: int = KDBM_PORT,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.krb = kerberos_client
        self.master_address = IPAddress(master_address)
        self.port = port
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._retry_rng = random.Random(f"kdbm:{kerberos_client.host.name}")

    def _kdbm_credential(
        self, principal: Principal, password: str
    ) -> Credential:
        """Get a KDBM ticket the only way possible: through the AS, with a
        password (Section 5.1's deliberate design)."""
        return self.krb.as_exchange(
            principal, password, kdbm_principal(self.krb.realm)
        )

    def _roundtrip(
        self, cred: Credential, client: Principal, body: AdminRequestBody
    ) -> AdminReplyBody:
        def attempt(address) -> bytes:
            # Fresh authenticator and private seal per attempt: if only
            # the reply was lost, the KDBM has already recorded the old
            # timestamp in its replay cache.
            now = self.krb._auth_now()
            ap_request = krb_mk_req(
                ticket_blob=cred.ticket,
                session_key=cred.session_key,
                client=client,
                client_address=self.krb.host.address,
                now=now,
                kvno=cred.kvno,
            )
            private = krb_mk_priv(
                body.to_bytes(), cred.session_key, self.krb.host.address, now
            )
            request = KdbmRequest(
                ap_request=ap_request.to_bytes(),
                private_body=private.to_bytes(),
            )
            return self.krb.host.rpc(address, self.port, request.to_bytes())

        try:
            # One endpoint only: the KDBM is master-only (Section 5) —
            # no slave can take the write, so "failover" here is just
            # retransmission against the same machine.
            raw, _, _ = run_with_failover(
                self.retry_policy,
                self.krb.host.clock,
                [self.master_address],
                attempt,
                rng=self._retry_rng,
                metrics=self.krb.metrics,
                op="kdbm",
                retry_on=(Unreachable,),
            )
        except RetryExhausted as exc:
            raise KdbmTimeout(
                f"KDBM at {self.master_address} did not answer after "
                f"{exc.attempts} attempt(s) — master down or partitioned; "
                "admin writes cannot fail over to read-only slaves",
                attempts=exc.attempts,
            ) from exc
        if not raw:
            raise error_for_code(
                ErrorCode.KDBM_ERROR,
                "KDBM dropped the request (authentication failed?)",
            )
        reply_data = krb_rd_priv(
            PrivMessage.from_bytes(raw),
            cred.session_key,
            expected_sender=self.master_address,
            now=self.krb.host.clock.now(),
        )
        return AdminReplyBody.from_bytes(reply_data)

    def _check(self, reply: AdminReplyBody) -> str:
        if not reply.ok:
            # Typed: a KDBM refusal raises KdbmError (or a more specific
            # class), via the one code↔exception mapping.
            raise error_for_code(reply.code, reply.text)
        return reply.text

    # -- the operations --------------------------------------------------------

    def change_password(
        self,
        principal: Principal,
        old_password: str,
        new_password: str,
    ) -> str:
        """kpasswd: users "are required to enter their old password when
        they invoke the program"."""
        cred = self._kdbm_credential(principal, old_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=principal,
            new_password=new_password,
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, principal, body))

    def admin_change_password(
        self,
        admin: Principal,
        admin_password: str,
        target: Principal,
        new_password: str,
    ) -> str:
        """kadmin cpw: an administrator resets someone else's password."""
        cred = self._kdbm_credential(admin, admin_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.CHANGE_PASSWORD),
            target=target,
            new_password=new_password,
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, admin, body))

    def add_principal(
        self,
        admin: Principal,
        admin_password: str,
        target: Principal,
        initial_password: str,
        max_life: float = 0.0,
    ) -> str:
        """kadmin ank: register a new principal."""
        cred = self._kdbm_credential(admin, admin_password)
        body = AdminRequestBody(
            operation=int(AdminOperation.ADD_PRINCIPAL),
            target=target,
            new_password=initial_password,
            max_life=max_life,
        )
        return self._check(self._roundtrip(cred, admin, body))

    def get_entry(
        self, principal: Principal, password: str, target: Optional[Principal] = None
    ) -> str:
        """kadmin get: inspect a database entry (no key material returned)."""
        cred = self._kdbm_credential(principal, password)
        body = AdminRequestBody(
            operation=int(AdminOperation.GET_ENTRY),
            target=target if target is not None else principal,
            new_password="",
            max_life=0.0,
        )
        return self._check(self._roundtrip(cred, principal, body))
