"""The KDBM server (paper Section 5.1, Figure 11).

*"The KDBM server accepts requests to add principals to the database or
change the passwords for existing principals. ... When the KDBM server
receives a request, it authorizes it by comparing the authenticated
principal name of the requester of the change to the principal name of
the target of the request.  If they are the same, the request is
permitted.  If they are not the same, the KDBM server consults an access
control list. ... All requests to the KDBM program, whether permitted or
denied, are logged."*

The server refuses to start on a host holding a read-only database copy:
"the KDBM server may only run on the master Kerberos machine"
(Figure 11), which is what makes administration unavailable — while
authentication continues — when the master is down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.applib import krb_rd_req
from repro.core.errors import ErrorCode, KerberosError
from repro.core.service import Service
from repro.core.messages import ApRequest
from repro.core.replay import CLOCK_SKEW, ReplayCache
from repro.core.safe_priv import PrivMessage, krb_mk_priv, krb_rd_priv
from repro.database.acl import AccessControlList
from repro.database.db import (
    KerberosDatabase,
    NoSuchPrincipal,
    PrincipalExists,
    ReadOnlyDatabase,
)
from repro.kdbm.messages import (
    AdminOperation,
    AdminReplyBody,
    AdminRequestBody,
    KdbmRequest,
)
from repro.netsim.ports import KDBM_PORT
from repro.principal import Principal, kdbm_principal


@dataclass
class KdbmLogEntry:
    """One line of the KDBM audit log."""

    time: float
    requester: str
    operation: str
    target: str
    permitted: bool
    detail: str


class KdbmServer(Service):
    """Read-write database interface, master machine only."""

    def __init__(
        self,
        database: KerberosDatabase,
        acl: AccessControlList,
        skew: float = CLOCK_SKEW,
        port: int = KDBM_PORT,
    ) -> None:
        super().__init__()
        if database.readonly:
            raise ReadOnlyDatabase(
                "the KDBM server may only run on the master Kerberos "
                "machine (Section 5); this database copy is read-only"
            )
        self.db = database
        self.acl = acl
        self.skew = skew
        self.port = port
        self.service = kdbm_principal(database.realm)
        self.replay_cache = ReplayCache(window=skew)
        self.log: List[KdbmLogEntry] = []

    def ports(self):
        return {self.port: self._handle}

    def on_attach(self) -> None:
        # Section 5.1: "All requests ... whether permitted or denied,
        # are logged" — the realm audit plane gets the denials too.
        self.tracer = self.host.network.tracer
        self.audit = self.host.network.audit
        self.replay_cache.bind_audit(self.audit, self.host.name)

    # -- request handling -------------------------------------------------

    def _handle(self, datagram) -> bytes:
        with self.tracer.span_under(
            datagram.trace, "kdbm.request", host=self.host.name
        ):
            return self._handle_inner(datagram)

    def _handle_inner(self, datagram) -> bytes:
        now = self.host.clock.now()
        try:
            request = KdbmRequest.from_bytes(datagram.payload)
            ap_request = ApRequest.from_bytes(request.ap_request)
        except Exception:
            # Nothing authenticated to reply to; drop with a bare error.
            self._log(now, "<unparsed>", "?", "?", False, "undecodable request")
            return b""

        try:
            context = krb_rd_req(
                request=ap_request,
                service=self.service,
                service_key_or_srvtab=self.db.principal_key(self.service),
                packet_address=datagram.src,
                now=now,
                replay_cache=self.replay_cache,
                skew=self.skew,
            )
        except KerberosError as err:
            self._log(now, "<unauthenticated>", "?", "?", False, str(err))
            return b""  # cannot seal a reply without a session key

        try:
            body = AdminRequestBody.from_bytes(
                krb_rd_priv(
                    PrivMessage.from_bytes(request.private_body),
                    context.session_key,
                    expected_sender=datagram.src,
                    now=now,
                    skew=self.skew,
                )
            )
            reply = self._dispatch(
                context.client, body, now, trace=datagram.trace
            )
        except KerberosError as err:
            self._log(now, str(context.client), "?", "?", False, str(err))
            reply = AdminReplyBody(ok=False, code=int(err.code), text=err.message)

        sealed = krb_mk_priv(
            reply.to_bytes(), context.session_key, self.host.address, now
        )
        return sealed.to_bytes()

    # -- authorization (Section 5.1) -----------------------------------------

    def _authorize(
        self, requester: Principal, target: Principal, self_service_ok: bool
    ) -> bool:
        """Self-service or ACL, exactly the paper's rule."""
        if self_service_ok and requester.same_entity(
            target.with_realm(target.realm or self.db.realm)
        ):
            return True
        return self.acl.check(requester)

    def _dispatch(
        self,
        requester: Principal,
        body: AdminRequestBody,
        now: float,
        trace=None,
    ) -> AdminReplyBody:
        op = AdminOperation(body.operation)
        target = body.target
        op_name = op.name

        if op == AdminOperation.CHANGE_PASSWORD:
            permitted = self._authorize(requester, target, self_service_ok=True)
        elif op == AdminOperation.ADD_PRINCIPAL:
            # Adding a principal is never self-service.
            permitted = self.acl.check(requester)
        elif op == AdminOperation.GET_ENTRY:
            permitted = self._authorize(requester, target, self_service_ok=True)
        else:  # pragma: no cover - enum covers all
            permitted = False

        if not permitted:
            self._log(now, str(requester), op_name, str(target), False, "denied")
            self.audit.emit(
                "acl_denial",
                host=self.host.name,
                principal=str(requester),
                trace=trace,
                detail=f"{op_name} {target} denied",
            )
            return AdminReplyBody(
                ok=False,
                code=int(ErrorCode.KDBM_DENIED),
                text=f"{requester} may not {op_name} for {target}",
            )

        try:
            text = self._apply(op, requester, body, now)
        except (NoSuchPrincipal, PrincipalExists, ValueError) as exc:
            self._log(now, str(requester), op_name, str(target), False, str(exc))
            return AdminReplyBody(
                ok=False, code=int(ErrorCode.KDBM_ERROR), text=str(exc)
            )

        self._log(now, str(requester), op_name, str(target), True, text)
        return AdminReplyBody(ok=True, code=0, text=text)

    def _apply(
        self,
        op: AdminOperation,
        requester: Principal,
        body: AdminRequestBody,
        now: float,
    ) -> str:
        target = body.target.with_realm(self.db.realm)
        if op == AdminOperation.CHANGE_PASSWORD:
            record = self.db.change_key(
                target,
                new_password=body.new_password,
                now=now,
                mod_by=str(requester),
            )
            return f"password changed (key version {record.key_version})"
        if op == AdminOperation.ADD_PRINCIPAL:
            self.db.add_principal(
                target,
                password=body.new_password,
                now=now,
                max_life=body.max_life or 8 * 3600.0,
                mod_by=str(requester),
            )
            return f"{target} added"
        if op == AdminOperation.GET_ENTRY:
            record = self.db.get_record(target)
            return (
                f"{target} kvno={record.key_version} "
                f"expires={record.expiration:.0f} max_life={record.max_life:.0f}"
            )
        raise ValueError(f"unknown operation {op}")  # pragma: no cover

    def _log(
        self,
        now: float,
        requester: str,
        operation: str,
        target: str,
        permitted: bool,
        detail: str,
    ) -> None:
        self.log.append(
            KdbmLogEntry(
                time=now,
                requester=requester,
                operation=operation,
                target=target,
                permitted=permitted,
                detail=detail,
            )
        )
