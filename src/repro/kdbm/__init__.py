"""The administration server and protocol (paper Section 5, Figures 11-12).

*"The administration server (or KDBM server) provides a read-write
network interface to the database. ... The server side, however, must
run on the machine housing the Kerberos database in order to make
changes to the database."*

Components:

* :mod:`repro.kdbm.messages` — the admin protocol: operations ride
  inside *private messages* (Section 2.1: "Private messages are used,
  for example, by the Kerberos server itself for sending passwords over
  the network");
* :mod:`repro.kdbm.server` — the KDBM server: authenticates requesters
  via tickets obtained *from the authentication service only*
  (Section 5.1), authorizes by self-service-or-ACL, applies changes to
  the master database, and logs every request;
* :mod:`repro.kdbm.client` — the client side used by the kpasswd and
  kadmin programs (Figure 12).
"""

from repro.kdbm.client import KdbmClient, KdbmTimeout
from repro.kdbm.messages import AdminOperation
from repro.kdbm.server import KdbmLogEntry, KdbmServer

__all__ = [
    "AdminOperation",
    "KdbmClient",
    "KdbmLogEntry",
    "KdbmServer",
    "KdbmTimeout",
]
