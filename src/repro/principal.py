"""Kerberos principal names (paper Section 3, Figure 2).

*"A name consists of a primary name, an instance, and a realm, expressed
as name.instance@realm."*  The figure's examples::

    bcn
    treese.root
    jis@LCS.MIT.EDU
    rlogin.priam@ATHENA.MIT.EDU

The primary name identifies the user or service; the instance
distinguishes variations (privileged user instances like ``root`` and
``admin``, or the host a service runs on — "rlogin.priam is the rlogin
server on the host named priam"); the realm names the administrative
entity whose database vouches for the principal.

Conventions implemented here, all from the paper:

* the NULL (empty) instance is the default for users;
* administrators act through a separate ``admin`` instance
  (Section 5.1), giving administration its own password;
* the ticket-granting service is itself a principal; for cross-realm
  operation (Section 7.2) its instance carries the *realm the tickets
  are good for*, so the TGT for a remote realm is a ticket for
  ``krbtgt.REMOTE@LOCAL``.
"""

from __future__ import annotations

from repro.encode import WireStruct, field

#: Primary name of the ticket-granting service.
TGS_NAME = "krbtgt"
#: Primary name / instance of the administration (KDBM) service, which the
#: ticket-granting service refuses to issue tickets for (Section 5.1).
KDBM_NAME = "changepw"
KDBM_INSTANCE = "kerberos"
#: Instance marking an administrator (Section 5.1's convention).
ADMIN_INSTANCE = "admin"
#: Maximum length of each component, as in the historical headers.
MAX_COMPONENT = 40


class PrincipalError(ValueError):
    """Raised for malformed principal names."""


def _check_component(value: str, what: str, allow_dot: bool = False) -> str:
    if not isinstance(value, str):
        raise PrincipalError(f"{what} must be str, got {type(value).__name__}")
    if len(value) > MAX_COMPONENT:
        raise PrincipalError(f"{what} {value!r} exceeds {MAX_COMPONENT} chars")
    if "@" in value:
        raise PrincipalError(f"{what} {value!r} may not contain '@'")
    if not allow_dot and "." in value:
        raise PrincipalError(f"{what} {value!r} may not contain '.'")
    return value


class Principal(WireStruct):
    """A named Kerberos entity — user or server, the paper treats them alike."""

    FIELDS = (
        field("name", "string"),
        field("instance", "string"),
        field("realm", "string"),
    )

    def __init__(self, name: str, instance: str = "", realm: str = "") -> None:
        _check_component(name, "primary name")
        if not name:
            raise PrincipalError("primary name must not be empty")
        # Instances may contain dots: the cross-realm TGS principal uses
        # the remote realm as its instance (krbtgt.LCS.MIT.EDU).  Parsing
        # stays unambiguous because the primary name may not contain '.'
        # and the split is on the first dot.
        _check_component(instance, "instance", allow_dot=True)
        _check_component(realm, "realm", allow_dot=True)
        super().__init__(name=name, instance=instance, realm=realm)

    # -- parsing / formatting ---------------------------------------------

    @classmethod
    def parse(cls, text: str, default_realm: str = "") -> "Principal":
        """Parse ``name[.instance][@realm]`` (Figure 2's syntax)."""
        if not isinstance(text, str) or not text:
            raise PrincipalError(f"cannot parse principal from {text!r}")
        if text.count("@") > 1:
            raise PrincipalError(f"multiple '@' in {text!r}")
        if "@" in text:
            local, realm = text.split("@", 1)
            if not realm:
                raise PrincipalError(f"empty realm in {text!r}")
        else:
            local, realm = text, default_realm
        if "." in local:
            name, instance = local.split(".", 1)
            if not instance:
                raise PrincipalError(f"empty instance in {text!r}")
        else:
            name, instance = local, ""
        return cls(name, instance, realm)

    def __str__(self) -> str:
        out = self.name
        if self.instance:
            out += f".{self.instance}"
        if self.realm:
            out += f"@{self.realm}"
        return out

    def __repr__(self) -> str:
        return f"Principal({str(self)!r})"

    # -- derived forms ------------------------------------------------------

    def with_realm(self, realm: str) -> "Principal":
        return Principal(self.name, self.instance, realm)

    def admin_principal(self) -> "Principal":
        """The Section 5.1 admin variant: same name, ``admin`` instance."""
        return Principal(self.name, ADMIN_INSTANCE, self.realm)

    @property
    def is_admin(self) -> bool:
        return self.instance == ADMIN_INSTANCE

    @property
    def is_tgs(self) -> bool:
        return self.name == TGS_NAME

    @property
    def is_kdbm(self) -> bool:
        return self.name == KDBM_NAME and self.instance == KDBM_INSTANCE

    def db_key(self) -> str:
        """Realm-local lookup key: the database is per-realm, so records
        are keyed by name.instance only."""
        return f"{self.name}.{self.instance}" if self.instance else self.name

    def same_entity(self, other: "Principal") -> bool:
        """True if both names refer to the same principal (all components)."""
        return (
            self.name == other.name
            and self.instance == other.instance
            and self.realm == other.realm
        )


def tgs_principal(issuing_realm: str, for_realm: str = "") -> Principal:
    """The ticket-granting service principal.

    ``tgs_principal("ATHENA.MIT.EDU")`` is the local TGS.  For
    cross-realm (Section 7.2), ``tgs_principal("ATHENA.MIT.EDU",
    "LCS.MIT.EDU")`` names the *remote* realm's TGS as registered in the
    local database — the principal whose key is the inter-realm key.
    """
    if not issuing_realm:
        raise PrincipalError("issuing realm must not be empty")
    target = for_realm or issuing_realm
    return Principal(TGS_NAME, target, issuing_realm)


def kdbm_principal(realm: str) -> Principal:
    """The administration server's principal (Section 5)."""
    return Principal(KDBM_NAME, KDBM_INSTANCE, realm)
