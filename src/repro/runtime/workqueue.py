"""Bounded worker pools with request batching and admission control.

Section 9 sizes the Athena deployment (5,000 users, 650 workstations,
three Kerberos machines) and reports the busy-hour reality: a KDC is a
queueing system, not an instant oracle.  :class:`WorkQueue` models one
service's inbound queue on the event scheduler:

* a **bounded queue** — arrivals beyond ``queue_limit`` are *shed*
  immediately (the caller converts that into a typed overload error the
  client's retry/failover path rides out);
* a **worker pool** — up to ``workers`` batches are in service
  concurrently in simulated time; busy-hour throughput scales with the
  pool until the arrival rate is covered;
* **batching** — each worker takes up to ``batch_size`` queued items at
  once and the batch costs ``batch_overhead + len(batch) *
  per_item_cost`` simulated seconds, amortizing per-batch work (master
  key unseal, database row lookups) exactly the way the KDC's batch
  handler amortizes it functionally.

The queue is deterministic: it draws no randomness of its own, and all
concurrency is event ordering on the seeded scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, NamedTuple, Optional, Sequence, TypeVar

from repro.runtime.scheduler import EventScheduler

T = TypeVar("T")

#: Wait-time histogram boundaries (simulated seconds): queue waits range
#: from sub-batch (~ms) to shed-adjacent pileups.
WAIT_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)


class QueuedItem(NamedTuple):
    """One queue entry plus the observability it carries: the propagated
    trace context of the datagram that produced it and its enqueue time
    — what makes queue *wait* separable from *service* in a trace."""

    item: object
    trace: object
    enqueued_at: float


@dataclass(frozen=True)
class WorkQueueConfig:
    """Sizing for one service loop.

    The defaults model a late-80s server process: ~2 ms of CPU per
    request plus ~4 ms of per-batch overhead (master-key schedule, DB
    page touches) that batching amortizes.
    """

    workers: int = 1
    batch_size: int = 8
    queue_limit: int = 64
    per_item_cost: float = 0.002
    batch_overhead: float = 0.004

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.per_item_cost < 0 or self.batch_overhead < 0:
            raise ValueError("costs must be non-negative")

    def batch_cost(self, n: int) -> float:
        """Simulated service time for a batch of ``n`` items."""
        return self.batch_overhead + n * self.per_item_cost


class WorkQueue(Generic[T]):
    """One service's inbound queue + worker pool on the scheduler.

    ``process`` receives a batch (list of items) and is called when a
    worker *finishes* the batch — i.e. after its simulated service time
    has elapsed — so replies it produces are stamped with the right
    completion time.  ``shed`` is called synchronously at submit time
    for items refused by admission control.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        config: WorkQueueConfig,
        process: Callable[[List[T]], None],
        shed: Optional[Callable[[T], None]] = None,
        label: str = "workqueue",
        metrics=None,
        labels: Optional[dict] = None,
        tracer=None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self._process = process
        self._shed = shed
        self.label = label
        self.metrics = metrics
        self.tracer = tracer
        self._labels = dict(labels or {})
        self._queue: List[QueuedItem] = []
        self._busy_workers = 0
        self.submitted = 0
        self.shed_count = 0
        self.completed = 0
        self.batches = 0
        #: Metadata of the batch currently inside the ``process``
        #: callback (aligned with the items it received), plus the time
        #: the batch entered service — how the owner annotates its spans
        #: with queue-wait and batch size.
        self.current_batch: Optional[List[QueuedItem]] = None
        self.current_batch_dispatched_at: Optional[float] = None

    # -- instrumentation ---------------------------------------------------

    def _gauge_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                f"{self.label}.queue_depth", self._labels
            ).set(len(self._queue))

    def _count(self, name: str, **extra) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"{self.label}.{name}", {**self._labels, **extra}
            ).inc()

    # -- admission ---------------------------------------------------------

    def submit(self, item: T, trace=None) -> bool:
        """Queue one item.  Returns False (and calls ``shed``) when the
        queue is at its limit — admission control, not an exception,
        because the caller still owes the peer an overload reply.

        ``trace`` is the propagated :class:`repro.obs.TraceContext` of
        the request this item answers; the queue emits a per-item
        ``<label>.wait`` span under it covering enqueue → service."""
        if len(self._queue) >= self.config.queue_limit:
            self.shed_count += 1
            self._count("shed_total")
            if self._shed is not None:
                self._shed(item)
            return False
        self.submitted += 1
        self._queue.append(
            QueuedItem(item, trace, self.scheduler.clock.now())
        )
        self._count("submitted_total")
        self._gauge_depth()
        self._dispatch()
        return True

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def idle(self) -> bool:
        return not self._queue and self._busy_workers == 0

    # -- the service loop --------------------------------------------------

    def _dispatch(self) -> None:
        """Hand queued items to idle workers, one batch per worker."""
        while self._queue and self._busy_workers < self.config.workers:
            batch = self._queue[: self.config.batch_size]
            del self._queue[: len(batch)]
            self._busy_workers += 1
            self.batches += 1
            self._count("batches_total")
            self._gauge_depth()
            dispatched_at = self.scheduler.clock.now()
            self._observe_waits(batch, dispatched_at)
            self.scheduler.after(
                self.config.batch_cost(len(batch)),
                lambda b=batch, t=dispatched_at: self._complete(b, t),
                label=f"{self.label}.batch",
            )

    def _observe_waits(
        self, batch: List[QueuedItem], dispatched_at: float
    ) -> None:
        """Queue wait ends when the batch enters service: record a
        histogram observation and (for traced items) a non-stack span
        covering the residency, so the wait shows up in the trace tree
        next to the handler span it delayed."""
        for entry in batch:
            wait = dispatched_at - entry.enqueued_at
            if self.metrics is not None:
                self.metrics.histogram(
                    f"{self.label}.wait_seconds", WAIT_BUCKETS, self._labels
                ).observe(wait)
            if (
                self.tracer is not None
                and self.tracer.enabled
                and entry.trace is not None
            ):
                span = self.tracer.open_span(
                    f"{self.label}.wait",
                    context=entry.trace,
                    start=entry.enqueued_at,
                )
                self.tracer.close_span(span, end=dispatched_at)

    def _complete(
        self, batch: List[QueuedItem], dispatched_at: Optional[float] = None
    ) -> None:
        self._busy_workers -= 1
        self.completed += len(batch)
        self.current_batch = batch
        self.current_batch_dispatched_at = dispatched_at
        try:
            self._process([entry.item for entry in batch])
        finally:
            self.current_batch = None
            self.current_batch_dispatched_at = None
            # More work may have queued while this batch was in service.
            self._dispatch()

    def drop_pending(self) -> Sequence[T]:
        """Crash semantics: empty the queue (in-flight batches are the
        workers' problem — their completions must check host state).
        Returns the dropped items so the owner can fail their replies."""
        dropped = [entry.item for entry in self._queue]
        self._queue.clear()
        self._gauge_depth()
        return dropped


__all__ = ["QueuedItem", "WorkQueue", "WorkQueueConfig"]
