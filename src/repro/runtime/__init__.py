"""Event-driven realm runtime.

The discrete-event layer that makes the Section 9 deployment's
concurrency modelable: a deterministic scheduler
(:class:`EventScheduler`) over the simulated clock, and bounded
batching worker pools (:class:`WorkQueue`) for busy services.

:mod:`repro.netsim` owns one scheduler per :class:`~repro.netsim.
network.Network` (``net.runtime``) and schedules every datagram leg on
it; servers with a concurrent service loop (the KDC) queue arrivals
into a :class:`WorkQueue` and answer from worker completions.
"""

from repro.runtime.scheduler import (
    EventScheduler,
    ScheduledEvent,
    SchedulerError,
)
from repro.runtime.workqueue import QueuedItem, WorkQueue, WorkQueueConfig

__all__ = [
    "EventScheduler",
    "QueuedItem",
    "ScheduledEvent",
    "SchedulerError",
    "WorkQueue",
    "WorkQueueConfig",
]
