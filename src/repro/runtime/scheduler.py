"""The deterministic discrete-event scheduler.

The paper's Section 9 deployment — 5,000 users, 650 workstations, three
Kerberos machines — is a *concurrent* system: datagrams are in flight
while servers work, and a busy KDC queues requests rather than serving
them instantly.  The original netsim delivered every datagram inline
(``Network.send`` called the handler synchronously), which serializes
the whole realm through one call stack.  This module replaces that with
scheduled events on the simulated clock:

* every event carries a firing time on the :class:`~repro.netsim.clock.
  SimClock`; the scheduler pops the earliest and advances the clock to
  it, so clock-scheduled work (hourly propagation, crash restarts)
  interleaves at the right instants;
* ties at the same simulated instant are broken by a draw from a
  *seeded* RNG (then by insertion order), so concurrent arrivals at a
  busy server shuffle realistically yet identically on every same-seed
  run — the determinism the chaos suite and the replay analyses
  (Dua et al., arXiv:1304.3550) depend on;
* events can be cancelled in O(1); cancelled entries are skimmed off
  without advancing the clock.

The scheduler knows nothing about datagrams or Kerberos; it runs any
zero-argument callable.  :mod:`repro.netsim.network` schedules datagram
legs on it, and :mod:`repro.runtime.workqueue` builds server-side worker
pools from it.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, List, Optional


class SchedulerError(Exception):
    """Misuse of the event scheduler (e.g. running a cancelled event)."""


class ScheduledEvent:
    """One pending action: a firing time, a tie-break draw, an action."""

    __slots__ = ("time", "tiebreak", "seq", "action", "label", "cancelled")

    def __init__(
        self,
        time: float,
        tiebreak: float,
        seq: int,
        action: Callable[[], None],
        label: str,
    ) -> None:
        self.time = time
        self.tiebreak = tiebreak
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.tiebreak, self.seq) < (
            other.time, other.tiebreak, other.seq
        )

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return f"ScheduledEvent({self.label!r} @ {self.time:.6f}{state})"


class EventScheduler:
    """A priority queue of events over one :class:`SimClock`.

    ``step()`` advances the clock *through* ``clock.call_at`` callbacks
    due before the next event, so both schedules stay interleaved in
    time order.  Nested pumping is allowed: an event's action may itself
    call :meth:`step`/:meth:`run_until_idle` (this is how a server
    handler performing its own RPC waits for the nested reply).
    """

    def __init__(self, clock, seed: int = 0) -> None:
        self.clock = clock
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        # Tie-breaking only — kept separate from the fault plane's RNG so
        # scheduling never perturbs fault draws (and vice versa).
        self._rng = random.Random(f"runtime:{seed}")
        self.metrics = None  # optional MetricsRegistry, set by the network
        self._executed = 0

    # -- scheduling -------------------------------------------------------

    def at(
        self, when: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` at simulated time ``when`` (clamped to now:
        the past is not available)."""
        when = max(float(when), self.clock.now())
        event = ScheduledEvent(
            when, self._rng.random(), next(self._seq), action, label
        )
        heapq.heappush(self._heap, event)
        if self.metrics is not None:
            self.metrics.counter(
                "runtime.events_scheduled_total",
                {"label": label or "event"},
            ).inc()
        return event

    def after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule {delay}s in the past")
        return self.at(self.clock.now() + delay, action, label)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a pending event; a no-op if it already ran."""
        event.cancelled = True

    # -- inspection --------------------------------------------------------

    def _skim(self) -> Optional[ScheduledEvent]:
        """The earliest live event, discarding cancelled heap heads."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def next_time(self) -> Optional[float]:
        """Firing time of the earliest pending event (None when idle)."""
        head = self._skim()
        return head.time if head is not None else None

    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def executed(self) -> int:
        """Events run since construction (monotone; determinism probes
        compare this across same-seed runs)."""
        return self._executed

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Run the earliest event, advancing the clock to it.  Returns
        False when no event is pending."""
        head = self._skim()
        if head is None:
            return False
        heapq.heappop(self._heap)
        gap = head.time - self.clock.now()
        if gap > 0:
            # advance() fires clock.call_at callbacks due in the gap, so
            # periodic daemons keep their place in the event order.
            self.clock.advance(gap)
        self._executed += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runtime.events_run_total",
                {"label": head.label or "event"},
            ).inc()
        head.action()
        return True

    def run_until_idle(
        self,
        horizon: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until none remain (or none before ``horizon``).
        Returns the number of events executed.  ``max_events`` is a
        runaway backstop, not a tuning knob."""
        ran = 0
        while ran < max_events:
            next_at = self.next_time()
            if next_at is None or (horizon is not None and next_at > horizon):
                break
            self.step()
            ran += 1
        return ran

    def run_for(self, seconds: float) -> int:
        """Run everything due within the next ``seconds`` of simulated
        time, then advance the clock to the end of the window."""
        horizon = self.clock.now() + seconds
        ran = self.run_until_idle(horizon=horizon)
        remaining = horizon - self.clock.now()
        if remaining > 0:
            self.clock.advance(remaining)
        return ran

    def __repr__(self) -> str:
        return (
            f"EventScheduler(pending={self.pending()}, "
            f"executed={self._executed}, now={self.clock.now():.6f})"
        )


__all__ = ["EventScheduler", "ScheduledEvent", "SchedulerError"]
