"""Reproduction of *Kerberos: An Authentication Service for Open Network
Systems* (Steiner, Neuman, Schiller; USENIX Winter 1988).

The public API in one import::

    from repro import (
        Network, Realm,                 # a simulated campus + a realm on it
        KerberosClient, KerberosServer, # the protocol's two ends
        Principal,                      # name.instance@realm
        krb_mk_req, krb_rd_req,         # the application library
        KerberosError,
    )

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record; each subpackage's docstring cites the
paper sections it implements.
"""

from repro.core import (
    CredentialCache,
    ErrorCode,
    KerberosClient,
    KerberosError,
    KerberosServer,
    Principal,
    ReplayCache,
    SrvTab,
    Ticket,
    kdbm_principal,
    krb_mk_priv,
    krb_mk_rep,
    krb_mk_req,
    krb_mk_safe,
    krb_rd_priv,
    krb_rd_rep,
    krb_rd_req,
    krb_rd_safe,
    tgs_principal,
)
from repro.netsim import IPAddress, Network, SimClock
from repro.realm import Realm, link

__version__ = "1.0.0"

__all__ = [
    "CredentialCache",
    "ErrorCode",
    "IPAddress",
    "KerberosClient",
    "KerberosError",
    "KerberosServer",
    "Network",
    "Principal",
    "Realm",
    "ReplayCache",
    "SimClock",
    "SrvTab",
    "Ticket",
    "kdbm_principal",
    "krb_mk_priv",
    "krb_mk_rep",
    "krb_mk_req",
    "krb_mk_safe",
    "krb_rd_priv",
    "krb_rd_rep",
    "krb_rd_req",
    "krb_rd_safe",
    "link",
    "tgs_principal",
    "__version__",
]
