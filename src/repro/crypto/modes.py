"""DES block modes: ECB, CBC, and the paper's Propagating CBC (PCBC).

Paper, Section 2.2: *"In CBC, an error is propagated only through the
current block of the cipher, whereas in PCBC, the error is propagated
throughout the message.  This renders the entire message useless if an
error occurs, rather than just a portion of it."*

On top of the raw modes this module provides the ``seal``/``unseal`` pair
used by every protocol message in the repository.  ``seal`` frames the
plaintext as::

    | magic u32 | length u32 | data ... | zero pad | 8-byte trailer |

and encrypts it (PCBC by default).  ``unseal`` decrypts and checks the
magic, the length, and the trailer.  With PCBC, corrupting *any*
ciphertext block garbles every later plaintext block — including the
trailer — so tampering anywhere in the message is detected.  With CBC the
trailer survives mid-message corruption, which is exactly the weakness
the paper's PCBC extension exists to close (benchmarked in exp C1).

Performance note: the mode kernels work in the 64-bit *int* domain
end-to-end.  A whole message is converted bytes→ints with one
``struct.unpack`` call, chained/encrypted as Python ints via
:func:`repro.crypto.des.crypt_int`, and converted back with one
``struct.pack`` — no per-block ``bytes`` slicing or int round trips.
The original byte-path kernels live on as the A/B baseline in
:mod:`repro.crypto.reference`, and the property suite in
``tests/crypto/test_perf_kernels.py`` pins the two bit-exact.
"""

from __future__ import annotations

import enum
import struct
import weakref
from typing import List, Optional, Sequence, Tuple, Union

from repro.crypto import des_simd
from repro.crypto.bits import bytes_to_int
from repro.crypto.des import BLOCK_SIZE, DesKey, crypt_int, crypt_int2

_MASK64 = (1 << 64) - 1

#: Magic marking the start of a sealed message ("KRB4" in ASCII).
SEAL_MAGIC = 0x4B524234
#: Trailer block appended before encryption; survives decryption intact
#: only if no earlier block was corrupted (under PCBC).
SEAL_TRAILER = b"ATHENA88"

ZERO_IV = b"\x00" * BLOCK_SIZE


class IntegrityError(ValueError):
    """Decryption produced garbage: wrong key, corruption, or tampering."""


class Mode(enum.Enum):
    """Cipher mode selector for :func:`seal`/:func:`unseal`."""

    ECB = "ecb"
    CBC = "cbc"
    PCBC = "pcbc"


def _require_iv(iv: bytes) -> int:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    return bytes_to_int(iv)


def _unpack_blocks(data: bytes, what: str) -> tuple:
    """Whole-message bytes → tuple of big-endian u64 (one C call)."""
    n, rem = divmod(len(data), BLOCK_SIZE)
    if rem != 0:
        raise ValueError(
            f"{what} length {len(data)} is not a multiple of {BLOCK_SIZE}"
        )
    return struct.unpack(f">{n}Q", data)


def _pack_blocks(blocks: list) -> bytes:
    """Tuple/list of u64 → whole-message bytes (one C call)."""
    return struct.pack(f">{len(blocks)}Q", *blocks)


# --------------------------------------------------------------------------
# Raw modes. All operate on data whose length is a multiple of 8.
# --------------------------------------------------------------------------


def ecb_encrypt(key: DesKey, data: bytes) -> bytes:
    """Electronic codebook: each block independently encrypted."""
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    return _pack_blocks([crypt_int(b, subkeys) for b in blocks])


def ecb_decrypt(key: DesKey, data: bytes) -> bytes:
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    return _pack_blocks([crypt_int(b, subkeys) for b in blocks])


def cbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Cipher block chaining: C_i = E(P_i xor C_{i-1}), C_0 = IV."""
    prev = _require_iv(iv)
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    out = []
    append = out.append
    for block in blocks:
        prev = crypt_int(block ^ prev, subkeys)
        append(prev)
    return _pack_blocks(out)


def cbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    prev = _require_iv(iv)
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    out = []
    append = out.append
    for block in blocks:
        append(crypt_int(block, subkeys) ^ prev)
        prev = block
    return _pack_blocks(out)


def pcbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Propagating CBC: C_i = E(P_i xor P_{i-1} xor C_{i-1}).

    The chaining value mixes both the previous plaintext and the previous
    ciphertext, so any ciphertext error cascades into every subsequent
    plaintext block on decryption — the paper's whole-message error
    propagation.
    """
    chain = _require_iv(iv)  # holds P_{i-1} xor C_{i-1}
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    out = []
    append = out.append
    for plain in blocks:
        cipher = crypt_int(plain ^ chain, subkeys)
        append(cipher)
        chain = plain ^ cipher
    return _pack_blocks(out)


def pcbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    chain = _require_iv(iv)
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    out = []
    append = out.append
    for cipher in blocks:
        plain = crypt_int(cipher, subkeys) ^ chain
        append(plain)
        chain = plain ^ cipher
    return _pack_blocks(out)


#: Dispatch tables for :func:`seal`/:func:`unseal`.  The benchmark
#: baseline (:func:`repro.crypto.reference.reference_kernels`) swaps
#: these for the byte-path originals, so look kernels up at call time.
_ENCRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_encrypt(key, data),
    Mode.CBC: cbc_encrypt,
    Mode.PCBC: pcbc_encrypt,
}

_DECRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_decrypt(key, data),
    Mode.CBC: cbc_decrypt,
    Mode.PCBC: pcbc_decrypt,
}


# --------------------------------------------------------------------------
# Sealed messages.
# --------------------------------------------------------------------------


def seal(
    key: DesKey,
    data: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Frame and encrypt ``data`` so that :func:`unseal` can validate it.

    This is the primitive behind every "{...}K" in the paper's figures:
    tickets sealed in the server's key, KDC replies sealed in the client's
    key, authenticators sealed in the session key.
    """
    return _ENCRYPTORS[mode](key, _frame(data), iv)


def _frame(data: bytes) -> bytes:
    """The seal framing: header, data, zero pad, trailer."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"data must be bytes, got {type(data).__name__}")
    header = SEAL_MAGIC.to_bytes(4, "big") + len(data).to_bytes(4, "big")
    body = header + bytes(data)
    pad_len = (-len(body)) % BLOCK_SIZE
    return body + b"\x00" * pad_len + SEAL_TRAILER


def unseal(
    key: DesKey,
    ciphertext: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Decrypt a sealed message and return the original data.

    Raises :class:`IntegrityError` if the magic, length, or trailer do not
    check out — which is what happens when the wrong key is used (the
    paper's wrong-password case) or when the ciphertext was tampered with
    (detected whole-message under PCBC).
    """
    if len(ciphertext) % BLOCK_SIZE != 0 or len(ciphertext) < 2 * BLOCK_SIZE:
        raise IntegrityError(
            f"sealed message has invalid length {len(ciphertext)}"
        )
    plain = _DECRYPTORS[mode](key, ciphertext, iv)
    magic = int.from_bytes(plain[:4], "big")
    if magic != SEAL_MAGIC:
        raise IntegrityError("bad magic: wrong key or corrupted message")
    length = int.from_bytes(plain[4:8], "big")
    if 8 + length + BLOCK_SIZE > len(plain):
        raise IntegrityError("declared length exceeds message size")
    if plain[-BLOCK_SIZE:] != SEAL_TRAILER:
        raise IntegrityError("bad trailer: message corrupted in transit")
    pad = plain[8 + length : -BLOCK_SIZE]
    if any(pad):
        raise IntegrityError("nonzero padding: message corrupted in transit")
    return plain[8 : 8 + length]


# --------------------------------------------------------------------------
# Multi-message PCBC: the batch plane's cipher entry points.
#
# PCBC chains are sequential *within* one message, but two independent
# messages place no ordering constraint on each other — so a batch of
# sealed tickets/replies can run two messages per pass of the Feistel
# network (:func:`repro.crypto.des.crypt_int2`).  The jobs are paired
# statically (0 with 1, 2 with 3, ...); a pair runs in lockstep over the
# shorter message, then the longer tail (and an odd final job) falls
# back to the single-lane kernel.  Outputs are bit-identical to running
# :func:`seal`/:func:`unseal` per message, which the property suite and
# the request-plane benchmark's A/B legs both assert.
# --------------------------------------------------------------------------

#: Process-wide count of blocks pushed through the two-lane kernel.
_interleaved_blocks = 0

#: Live metric sinks mirroring ``crypto.interleaved_blocks_total``.
_sinks: List[Tuple[weakref.ref, object]] = []


def interleaved_blocks() -> int:
    """Blocks processed by the interleaved kernel since process start."""
    return _interleaved_blocks


def attach_metrics(metrics, labels: Optional[dict] = None) -> None:
    """Mirror future interleaved-block counts into ``metrics`` as
    ``crypto.interleaved_blocks_total``.  Same contract as
    :func:`repro.crypto.keycache.attach_metrics`: attaching one registry
    twice is a no-op, dead registries are pruned on the next attach."""
    _sinks[:] = [s for s in _sinks if s[0]() is not None]
    for ref, _ in _sinks:
        if ref() is metrics:
            return
    counter = metrics.counter(
        "crypto.interleaved_blocks_total", dict(labels or {})
    )
    _sinks.append((weakref.ref(metrics), counter))


def _count_interleaved(blocks: int) -> None:
    global _interleaved_blocks
    _interleaved_blocks += blocks
    for ref, counter in _sinks:
        if ref() is not None:
            counter.inc(blocks)


def _pcbc_run_pair(job_a, job_b, crypt2=crypt_int2, crypt1=crypt_int):
    """Advance two PCBC-encrypt jobs in lockstep, then finish tails.

    Each job is a mutable ``[subkeys, chain, blocks, out]`` record; on
    return its ``out`` holds the cipher blocks and ``chain`` the final
    chaining value (for callers that resume, e.g. skeleton sealing).
    """
    sk_a, chain_a, blocks_a, out_a = job_a
    sk_b, chain_b, blocks_b, out_b = job_b
    paired = min(len(blocks_a), len(blocks_b))
    push_a = out_a.append
    push_b = out_b.append
    for i in range(paired):
        p_a = blocks_a[i]
        p_b = blocks_b[i]
        c_a, c_b = crypt2(p_a ^ chain_a, sk_a, p_b ^ chain_b, sk_b)
        push_a(c_a)
        chain_a = p_a ^ c_a
        push_b(c_b)
        chain_b = p_b ^ c_b
    if paired:
        _count_interleaved(2 * paired)
    for i in range(paired, len(blocks_a)):
        p = blocks_a[i]
        c = crypt1(p ^ chain_a, sk_a)
        push_a(c)
        chain_a = p ^ c
    for i in range(paired, len(blocks_b)):
        p = blocks_b[i]
        c = crypt1(p ^ chain_b, sk_b)
        push_b(c)
        chain_b = p ^ c
    job_a[1] = chain_a
    job_b[1] = chain_b


def _pcbc_run_single(job, crypt1=crypt_int):
    """Finish one unpaired PCBC-encrypt job on the single-lane kernel."""
    sk, chain, blocks, out = job
    push = out.append
    for p in blocks:
        c = crypt1(p ^ chain, sk)
        push(c)
        chain = p ^ c
    job[1] = chain


#: Lane count below which the two-lane kernel beats the wide one: a
#: wide Feistel pass costs a fixed ~200 vector dispatches however many
#: lanes ride it, and the scalar pair kernel's ~10us/block crosses that
#: line around 32 lanes.
WIDE_MIN_LANES = 32


def _pcbc_run_wide(jobs) -> None:
    """Advance every job one block per Feistel pass (numpy lanes).

    Jobs are sorted longest-first so the active set stays a contiguous
    prefix as short messages finish; once too few lanes remain to
    amortize the vector dispatch cost, the tails drop back to the
    two-lane kernel via :func:`_pcbc_run_jobs_paired`.
    """
    np = des_simd._np
    lanes = sorted(jobs, key=lambda job: -len(job[2]))
    km = des_simd.keymat([job[0] for job in lanes])
    chains = np.array([job[1] for job in lanes], dtype=np.uint64)
    lens = [len(job[2]) for job in lanes]
    active = len(lanes)
    step = 0
    while step < lens[0]:
        while active and lens[active - 1] <= step:
            active -= 1
        if active < WIDE_MIN_LANES:
            break
        plain = np.array(
            [lanes[i][2][step] for i in range(active)], dtype=np.uint64
        )
        cipher = des_simd.crypt_wide(plain ^ chains[:active], km[:, :active])
        chains[:active] = plain ^ cipher
        for i, c in enumerate(cipher.tolist()):
            lanes[i][3].append(c)
        _count_interleaved(active)
        step += 1
    tails, originals = [], []
    for i, job in enumerate(lanes):
        job[1] = int(chains[i])
        done = len(job[3])
        if done < len(job[2]):
            tails.append([job[0], job[1], job[2][done:], job[3]])
            originals.append(job)
    _pcbc_run_jobs_paired(tails)
    for wrapper, job in zip(tails, originals):
        job[1] = wrapper[1]


def _pcbc_run_jobs_paired(jobs) -> None:
    """Run PCBC-encrypt jobs two at a time (odd final job single-lane)."""
    i = 0
    n = len(jobs)
    while i + 1 < n:
        _pcbc_run_pair(jobs[i], jobs[i + 1])
        i += 2
    if i < n:
        _pcbc_run_single(jobs[i])


def _pcbc_run_jobs(jobs) -> None:
    """Dispatch PCBC-encrypt jobs to the widest kernel that pays off."""
    if des_simd.available() and len(jobs) >= WIDE_MIN_LANES:
        _pcbc_run_wide(jobs)
    else:
        _pcbc_run_jobs_paired(jobs)


def pcbc_encrypt_many(
    items: Sequence[Tuple[DesKey, bytes]], iv: bytes = ZERO_IV
) -> List[bytes]:
    """PCBC-encrypt many independent messages, two per Feistel pass.

    Bit-identical to ``[pcbc_encrypt(key, data, iv) for key, data in
    items]``.
    """
    chain0 = _require_iv(iv)
    jobs = [
        [key._enc_subkeys, chain0, _unpack_blocks(data, "plaintext"), []]
        for key, data in items
    ]
    _pcbc_run_jobs(jobs)
    return [_pack_blocks(job[3]) for job in jobs]


def pcbc_decrypt_many(
    items: Sequence[Tuple[DesKey, bytes]], iv: bytes = ZERO_IV
) -> List[bytes]:
    """PCBC-decrypt many independent messages, two per Feistel pass.

    Bit-identical to ``[pcbc_decrypt(key, data, iv) for key, data in
    items]``.
    """
    chain0 = _require_iv(iv)
    jobs = [
        (key._dec_subkeys, _unpack_blocks(data, "ciphertext"), [])
        for key, data in items
    ]
    chains = [chain0] * len(jobs)
    i = 0
    n = len(jobs)
    while i + 1 < n:
        sk_a, blocks_a, out_a = jobs[i]
        sk_b, blocks_b, out_b = jobs[i + 1]
        chain_a = chain_b = chain0
        paired = min(len(blocks_a), len(blocks_b))
        for j in range(paired):
            c_a = blocks_a[j]
            c_b = blocks_b[j]
            p_a, p_b = crypt_int2(c_a, sk_a, c_b, sk_b)
            p_a ^= chain_a
            p_b ^= chain_b
            out_a.append(p_a)
            chain_a = p_a ^ c_a
            out_b.append(p_b)
            chain_b = p_b ^ c_b
        if paired:
            _count_interleaved(2 * paired)
        chains[i] = chain_a
        chains[i + 1] = chain_b
        i += 2
    for j, (sk, blocks, out) in enumerate(jobs):
        chain = chains[j]
        for c in blocks[len(out):]:
            p = crypt_int(c, sk) ^ chain
            out.append(p)
            chain = p ^ c
    return [_pack_blocks(out) for _sk, _blocks, out in jobs]


def seal_many(items: Sequence[Tuple[DesKey, bytes]]) -> List[bytes]:
    """Frame and PCBC-encrypt many independent messages (two per pass).

    The batch analogue of :func:`seal`, used by the KDC's seal-all stage
    for sealed tickets and reply bodies.  Bit-identical to calling
    :func:`seal` per item.
    """
    return pcbc_encrypt_many(
        [(key, _frame(data)) for key, data in items]
    )


def unseal_many(
    items: Sequence[Tuple[DesKey, bytes]]
) -> List[Union[bytes, IntegrityError]]:
    """Decrypt and validate many sealed messages (two per pass).

    Returns, position-for-position, either the recovered plaintext or
    the :class:`IntegrityError` that message failed with — one bad item
    (wrong key, truncation, tampering) never poisons its batchmates.
    """
    good: List[Tuple[int, DesKey, bytes]] = []
    results: List[Union[bytes, IntegrityError]] = []
    for key, ciphertext in items:
        if (
            len(ciphertext) % BLOCK_SIZE != 0
            or len(ciphertext) < 2 * BLOCK_SIZE
        ):
            results.append(IntegrityError(
                f"sealed message has invalid length {len(ciphertext)}"
            ))
            continue
        good.append((len(results), key, ciphertext))
        results.append(b"")  # placeholder, patched below
    plains = pcbc_decrypt_many([(key, ct) for _i, key, ct in good])
    for (index, _key, _ct), plain in zip(good, plains):
        results[index] = _validate_frame(plain)
    return results


def _validate_frame(plain: bytes) -> Union[bytes, IntegrityError]:
    """Check a decrypted seal frame; the value-returning twin of the
    checks in :func:`unseal`."""
    if int.from_bytes(plain[:4], "big") != SEAL_MAGIC:
        return IntegrityError("bad magic: wrong key or corrupted message")
    length = int.from_bytes(plain[4:8], "big")
    if 8 + length + BLOCK_SIZE > len(plain):
        return IntegrityError("declared length exceeds message size")
    if plain[-BLOCK_SIZE:] != SEAL_TRAILER:
        return IntegrityError("bad trailer: message corrupted in transit")
    if any(plain[8 + length : -BLOCK_SIZE]):
        return IntegrityError("nonzero padding: message corrupted in transit")
    return plain[8 : 8 + length]


# --------------------------------------------------------------------------
# Split sealing: precomputable prefixes for sealed-ticket skeletons.
#
# Under PCBC the ciphertext of a prefix depends only on the key and that
# prefix's plaintext — so a message whose leading bytes repeat across
# requests (a hot ticket's server/client/address fields) can resume from
# a cached (cipher prefix, chaining value) pair and re-encrypt only the
# per-request suffix.  ``seal_prefix_state`` computes the resumable
# state; ``seal_resume`` (or the KDC's paired seal-all stage) finishes
# the frame bit-identically to a full :func:`seal`.
# --------------------------------------------------------------------------


def seal_prefix_state(
    key: DesKey, data_len: int, prefix: bytes
) -> Tuple[bytes, int]:
    """PCBC state after sealing the frame header plus ``prefix``.

    ``data_len`` is the *total* data length of the eventual frame (the
    header encodes it); ``len(prefix)`` must be a multiple of the block
    size and at most ``data_len``.  Returns ``(cipher_prefix, chain)``.
    """
    if len(prefix) % BLOCK_SIZE != 0:
        raise ValueError(
            f"prefix length {len(prefix)} is not a multiple of {BLOCK_SIZE}"
        )
    if len(prefix) > data_len:
        raise ValueError(f"prefix of {len(prefix)} exceeds data_len {data_len}")
    header = SEAL_MAGIC.to_bytes(4, "big") + data_len.to_bytes(4, "big")
    job = [
        key._enc_subkeys,
        _require_iv(ZERO_IV),
        _unpack_blocks(header + bytes(prefix), "prefix"),
        [],
    ]
    _pcbc_run_single(job)
    return _pack_blocks(job[3]), job[1]


def seal_suffix_body(cipher_prefix_len: int, suffix: bytes) -> bytes:
    """The remaining frame bytes after a cached prefix: suffix data, zero
    pad, trailer.  ``cipher_prefix_len`` is the length of the cached
    cipher prefix (header block included)."""
    data_len = cipher_prefix_len - 8 + len(suffix)
    pad_len = (-(8 + data_len)) % BLOCK_SIZE
    return bytes(suffix) + b"\x00" * pad_len + SEAL_TRAILER


def seal_resume(key: DesKey, state: Tuple[bytes, int], suffix: bytes) -> bytes:
    """Finish a split seal from ``seal_prefix_state``; bit-identical to
    ``seal(key, prefix + suffix)``."""
    cipher_prefix, chain = state
    job = [
        key._enc_subkeys,
        chain,
        _unpack_blocks(
            seal_suffix_body(len(cipher_prefix), suffix), "suffix"
        ),
        [],
    ]
    _pcbc_run_single(job)
    return cipher_prefix + _pack_blocks(job[3])


def seal_resume_many(
    items: Sequence[Tuple[DesKey, Tuple[bytes, int], bytes]]
) -> List[bytes]:
    """Finish many split seals, two per Feistel pass.

    Each item is ``(key, state, suffix)`` with ``state`` from
    :func:`seal_prefix_state`.  Bit-identical to calling
    :func:`seal_resume` per item; the KDC's seal-all stage uses this so
    skeleton-cached tickets still ride the interleaved kernel.
    """
    jobs = [
        [
            key._enc_subkeys,
            state[1],
            _unpack_blocks(
                seal_suffix_body(len(state[0]), suffix), "suffix"
            ),
            [],
        ]
        for key, state, suffix in items
    ]
    _pcbc_run_jobs(jobs)
    return [
        state[0] + _pack_blocks(job[3])
        for (_key, state, _suffix), job in zip(items, jobs)
    ]
