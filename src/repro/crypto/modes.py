"""DES block modes: ECB, CBC, and the paper's Propagating CBC (PCBC).

Paper, Section 2.2: *"In CBC, an error is propagated only through the
current block of the cipher, whereas in PCBC, the error is propagated
throughout the message.  This renders the entire message useless if an
error occurs, rather than just a portion of it."*

On top of the raw modes this module provides the ``seal``/``unseal`` pair
used by every protocol message in the repository.  ``seal`` frames the
plaintext as::

    | magic u32 | length u32 | data ... | zero pad | 8-byte trailer |

and encrypts it (PCBC by default).  ``unseal`` decrypts and checks the
magic, the length, and the trailer.  With PCBC, corrupting *any*
ciphertext block garbles every later plaintext block — including the
trailer — so tampering anywhere in the message is detected.  With CBC the
trailer survives mid-message corruption, which is exactly the weakness
the paper's PCBC extension exists to close (benchmarked in exp C1).
"""

from __future__ import annotations

import enum

from repro.crypto.bits import bytes_to_int, int_to_bytes
from repro.crypto.des import BLOCK_SIZE, DesKey

_MASK64 = (1 << 64) - 1

#: Magic marking the start of a sealed message ("KRB4" in ASCII).
SEAL_MAGIC = 0x4B524234
#: Trailer block appended before encryption; survives decryption intact
#: only if no earlier block was corrupted (under PCBC).
SEAL_TRAILER = b"ATHENA88"

ZERO_IV = b"\x00" * BLOCK_SIZE


class IntegrityError(ValueError):
    """Decryption produced garbage: wrong key, corruption, or tampering."""


class Mode(enum.Enum):
    """Cipher mode selector for :func:`seal`/:func:`unseal`."""

    ECB = "ecb"
    CBC = "cbc"
    PCBC = "pcbc"


def _require_blocks(data: bytes, what: str) -> None:
    if len(data) % BLOCK_SIZE != 0:
        raise ValueError(
            f"{what} length {len(data)} is not a multiple of {BLOCK_SIZE}"
        )


def _require_iv(iv: bytes) -> int:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    return bytes_to_int(iv)


# --------------------------------------------------------------------------
# Raw modes. All operate on data whose length is a multiple of 8.
# --------------------------------------------------------------------------


def ecb_encrypt(key: DesKey, data: bytes) -> bytes:
    """Electronic codebook: each block independently encrypted."""
    _require_blocks(data, "plaintext")
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        out += key.encrypt_block(data[i : i + BLOCK_SIZE])
    return bytes(out)


def ecb_decrypt(key: DesKey, data: bytes) -> bytes:
    _require_blocks(data, "ciphertext")
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        out += key.decrypt_block(data[i : i + BLOCK_SIZE])
    return bytes(out)


def cbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Cipher block chaining: C_i = E(P_i xor C_{i-1}), C_0 = IV."""
    _require_blocks(data, "plaintext")
    prev = _require_iv(iv)
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes_to_int(data[i : i + BLOCK_SIZE])
        prev = key.encrypt_block_int(block ^ prev)
        out += int_to_bytes(prev, BLOCK_SIZE)
    return bytes(out)


def cbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    _require_blocks(data, "ciphertext")
    prev = _require_iv(iv)
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes_to_int(data[i : i + BLOCK_SIZE])
        out += int_to_bytes(key.decrypt_block_int(block) ^ prev, BLOCK_SIZE)
        prev = block
    return bytes(out)


def pcbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Propagating CBC: C_i = E(P_i xor P_{i-1} xor C_{i-1}).

    The chaining value mixes both the previous plaintext and the previous
    ciphertext, so any ciphertext error cascades into every subsequent
    plaintext block on decryption — the paper's whole-message error
    propagation.
    """
    _require_blocks(data, "plaintext")
    chain = _require_iv(iv)  # holds P_{i-1} xor C_{i-1}
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        plain = bytes_to_int(data[i : i + BLOCK_SIZE])
        cipher = key.encrypt_block_int(plain ^ chain)
        out += int_to_bytes(cipher, BLOCK_SIZE)
        chain = (plain ^ cipher) & _MASK64
    return bytes(out)


def pcbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    _require_blocks(data, "ciphertext")
    chain = _require_iv(iv)
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        cipher = bytes_to_int(data[i : i + BLOCK_SIZE])
        plain = key.decrypt_block_int(cipher) ^ chain
        out += int_to_bytes(plain, BLOCK_SIZE)
        chain = (plain ^ cipher) & _MASK64
    return bytes(out)


_ENCRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_encrypt(key, data),
    Mode.CBC: cbc_encrypt,
    Mode.PCBC: pcbc_encrypt,
}

_DECRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_decrypt(key, data),
    Mode.CBC: cbc_decrypt,
    Mode.PCBC: pcbc_decrypt,
}


# --------------------------------------------------------------------------
# Sealed messages.
# --------------------------------------------------------------------------


def seal(
    key: DesKey,
    data: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Frame and encrypt ``data`` so that :func:`unseal` can validate it.

    This is the primitive behind every "{...}K" in the paper's figures:
    tickets sealed in the server's key, KDC replies sealed in the client's
    key, authenticators sealed in the session key.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"data must be bytes, got {type(data).__name__}")
    header = SEAL_MAGIC.to_bytes(4, "big") + len(data).to_bytes(4, "big")
    body = header + bytes(data)
    pad_len = (-len(body)) % BLOCK_SIZE
    body += b"\x00" * pad_len + SEAL_TRAILER
    return _ENCRYPTORS[mode](key, body, iv)


def unseal(
    key: DesKey,
    ciphertext: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Decrypt a sealed message and return the original data.

    Raises :class:`IntegrityError` if the magic, length, or trailer do not
    check out — which is what happens when the wrong key is used (the
    paper's wrong-password case) or when the ciphertext was tampered with
    (detected whole-message under PCBC).
    """
    if len(ciphertext) % BLOCK_SIZE != 0 or len(ciphertext) < 2 * BLOCK_SIZE:
        raise IntegrityError(
            f"sealed message has invalid length {len(ciphertext)}"
        )
    plain = _DECRYPTORS[mode](key, ciphertext, iv)
    magic = int.from_bytes(plain[:4], "big")
    if magic != SEAL_MAGIC:
        raise IntegrityError("bad magic: wrong key or corrupted message")
    length = int.from_bytes(plain[4:8], "big")
    if 8 + length + BLOCK_SIZE > len(plain):
        raise IntegrityError("declared length exceeds message size")
    if plain[-BLOCK_SIZE:] != SEAL_TRAILER:
        raise IntegrityError("bad trailer: message corrupted in transit")
    pad = plain[8 + length : -BLOCK_SIZE]
    if any(pad):
        raise IntegrityError("nonzero padding: message corrupted in transit")
    return plain[8 : 8 + length]
