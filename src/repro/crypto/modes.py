"""DES block modes: ECB, CBC, and the paper's Propagating CBC (PCBC).

Paper, Section 2.2: *"In CBC, an error is propagated only through the
current block of the cipher, whereas in PCBC, the error is propagated
throughout the message.  This renders the entire message useless if an
error occurs, rather than just a portion of it."*

On top of the raw modes this module provides the ``seal``/``unseal`` pair
used by every protocol message in the repository.  ``seal`` frames the
plaintext as::

    | magic u32 | length u32 | data ... | zero pad | 8-byte trailer |

and encrypts it (PCBC by default).  ``unseal`` decrypts and checks the
magic, the length, and the trailer.  With PCBC, corrupting *any*
ciphertext block garbles every later plaintext block — including the
trailer — so tampering anywhere in the message is detected.  With CBC the
trailer survives mid-message corruption, which is exactly the weakness
the paper's PCBC extension exists to close (benchmarked in exp C1).

Performance note: the mode kernels work in the 64-bit *int* domain
end-to-end.  A whole message is converted bytes→ints with one
``struct.unpack`` call, chained/encrypted as Python ints via
:func:`repro.crypto.des.crypt_int`, and converted back with one
``struct.pack`` — no per-block ``bytes`` slicing or int round trips.
The original byte-path kernels live on as the A/B baseline in
:mod:`repro.crypto.reference`, and the property suite in
``tests/crypto/test_perf_kernels.py`` pins the two bit-exact.
"""

from __future__ import annotations

import enum
import struct

from repro.crypto.bits import bytes_to_int
from repro.crypto.des import BLOCK_SIZE, DesKey, crypt_int

_MASK64 = (1 << 64) - 1

#: Magic marking the start of a sealed message ("KRB4" in ASCII).
SEAL_MAGIC = 0x4B524234
#: Trailer block appended before encryption; survives decryption intact
#: only if no earlier block was corrupted (under PCBC).
SEAL_TRAILER = b"ATHENA88"

ZERO_IV = b"\x00" * BLOCK_SIZE


class IntegrityError(ValueError):
    """Decryption produced garbage: wrong key, corruption, or tampering."""


class Mode(enum.Enum):
    """Cipher mode selector for :func:`seal`/:func:`unseal`."""

    ECB = "ecb"
    CBC = "cbc"
    PCBC = "pcbc"


def _require_iv(iv: bytes) -> int:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    return bytes_to_int(iv)


def _unpack_blocks(data: bytes, what: str) -> tuple:
    """Whole-message bytes → tuple of big-endian u64 (one C call)."""
    n, rem = divmod(len(data), BLOCK_SIZE)
    if rem != 0:
        raise ValueError(
            f"{what} length {len(data)} is not a multiple of {BLOCK_SIZE}"
        )
    return struct.unpack(f">{n}Q", data)


def _pack_blocks(blocks: list) -> bytes:
    """Tuple/list of u64 → whole-message bytes (one C call)."""
    return struct.pack(f">{len(blocks)}Q", *blocks)


# --------------------------------------------------------------------------
# Raw modes. All operate on data whose length is a multiple of 8.
# --------------------------------------------------------------------------


def ecb_encrypt(key: DesKey, data: bytes) -> bytes:
    """Electronic codebook: each block independently encrypted."""
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    return _pack_blocks([crypt_int(b, subkeys) for b in blocks])


def ecb_decrypt(key: DesKey, data: bytes) -> bytes:
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    return _pack_blocks([crypt_int(b, subkeys) for b in blocks])


def cbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Cipher block chaining: C_i = E(P_i xor C_{i-1}), C_0 = IV."""
    prev = _require_iv(iv)
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    out = []
    append = out.append
    for block in blocks:
        prev = crypt_int(block ^ prev, subkeys)
        append(prev)
    return _pack_blocks(out)


def cbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    prev = _require_iv(iv)
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    out = []
    append = out.append
    for block in blocks:
        append(crypt_int(block, subkeys) ^ prev)
        prev = block
    return _pack_blocks(out)


def pcbc_encrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    """Propagating CBC: C_i = E(P_i xor P_{i-1} xor C_{i-1}).

    The chaining value mixes both the previous plaintext and the previous
    ciphertext, so any ciphertext error cascades into every subsequent
    plaintext block on decryption — the paper's whole-message error
    propagation.
    """
    chain = _require_iv(iv)  # holds P_{i-1} xor C_{i-1}
    blocks = _unpack_blocks(data, "plaintext")
    subkeys = key._enc_subkeys
    out = []
    append = out.append
    for plain in blocks:
        cipher = crypt_int(plain ^ chain, subkeys)
        append(cipher)
        chain = plain ^ cipher
    return _pack_blocks(out)


def pcbc_decrypt(key: DesKey, data: bytes, iv: bytes = ZERO_IV) -> bytes:
    chain = _require_iv(iv)
    blocks = _unpack_blocks(data, "ciphertext")
    subkeys = key._dec_subkeys
    out = []
    append = out.append
    for cipher in blocks:
        plain = crypt_int(cipher, subkeys) ^ chain
        append(plain)
        chain = plain ^ cipher
    return _pack_blocks(out)


#: Dispatch tables for :func:`seal`/:func:`unseal`.  The benchmark
#: baseline (:func:`repro.crypto.reference.reference_kernels`) swaps
#: these for the byte-path originals, so look kernels up at call time.
_ENCRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_encrypt(key, data),
    Mode.CBC: cbc_encrypt,
    Mode.PCBC: pcbc_encrypt,
}

_DECRYPTORS = {
    Mode.ECB: lambda key, data, iv: ecb_decrypt(key, data),
    Mode.CBC: cbc_decrypt,
    Mode.PCBC: pcbc_decrypt,
}


# --------------------------------------------------------------------------
# Sealed messages.
# --------------------------------------------------------------------------


def seal(
    key: DesKey,
    data: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Frame and encrypt ``data`` so that :func:`unseal` can validate it.

    This is the primitive behind every "{...}K" in the paper's figures:
    tickets sealed in the server's key, KDC replies sealed in the client's
    key, authenticators sealed in the session key.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"data must be bytes, got {type(data).__name__}")
    header = SEAL_MAGIC.to_bytes(4, "big") + len(data).to_bytes(4, "big")
    body = header + bytes(data)
    pad_len = (-len(body)) % BLOCK_SIZE
    body += b"\x00" * pad_len + SEAL_TRAILER
    return _ENCRYPTORS[mode](key, body, iv)


def unseal(
    key: DesKey,
    ciphertext: bytes,
    iv: bytes = ZERO_IV,
    mode: Mode = Mode.PCBC,
) -> bytes:
    """Decrypt a sealed message and return the original data.

    Raises :class:`IntegrityError` if the magic, length, or trailer do not
    check out — which is what happens when the wrong key is used (the
    paper's wrong-password case) or when the ciphertext was tampered with
    (detected whole-message under PCBC).
    """
    if len(ciphertext) % BLOCK_SIZE != 0 or len(ciphertext) < 2 * BLOCK_SIZE:
        raise IntegrityError(
            f"sealed message has invalid length {len(ciphertext)}"
        )
    plain = _DECRYPTORS[mode](key, ciphertext, iv)
    magic = int.from_bytes(plain[:4], "big")
    if magic != SEAL_MAGIC:
        raise IntegrityError("bad magic: wrong key or corrupted message")
    length = int.from_bytes(plain[4:8], "big")
    if 8 + length + BLOCK_SIZE > len(plain):
        raise IntegrityError("declared length exceeds message size")
    if plain[-BLOCK_SIZE:] != SEAL_TRAILER:
        raise IntegrityError("bad trailer: message corrupted in transit")
    pad = plain[8 + length : -BLOCK_SIZE]
    if any(pad):
        raise IntegrityError("nonzero padding: message corrupted in transit")
    return plain[8 : 8 + length]
