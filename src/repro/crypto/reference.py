"""Byte-path reference kernels — the pre-optimization mode loops.

These are the original ECB/CBC/PCBC implementations that converted and
sliced ``bytes`` per block (``bytes_to_int``/``int_to_bytes`` round trips
inside the loop) and re-derived every key schedule on demand.  They are
kept, verbatim, for two jobs:

1. **Correctness oracle** — ``tests/crypto/test_perf_kernels.py`` pins
   the optimized int-domain kernels in :mod:`repro.crypto.modes`
   bit-exact against these on random keys/plaintexts and the FIPS 46
   vectors.
2. **A/B baseline** — :func:`reference_kernels` swaps these into the
   ``seal``/``unseal`` dispatch tables *and* disables the key-schedule
   caches, so ``benchmarks/test_bench_perf_hotpath.py`` can measure the
   "before" and "after" legs in the same run and gate on the ratio.

This module is exempt from the hot-loop lint
(``tests/crypto/test_lint_hotpath.py``) precisely because per-block
conversions are its reason to exist.  Do not "optimize" it.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.crypto import keycache, modes
from repro.crypto.bits import bytes_to_int, int_to_bytes
from repro.crypto.des import BLOCK_SIZE, DesKey, crypt_int_ref

_MASK64 = (1 << 64) - 1


def _require_blocks(data: bytes, what: str) -> None:
    if len(data) % BLOCK_SIZE != 0:
        raise ValueError(
            f"{what} length {len(data)} is not a multiple of {BLOCK_SIZE}"
        )


def _require_iv(iv: bytes) -> int:
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    return bytes_to_int(iv)


def _encrypt_block(key: DesKey, block: bytes) -> bytes:
    return int_to_bytes(
        crypt_int_ref(bytes_to_int(block), key._enc_subkeys), BLOCK_SIZE
    )


def _decrypt_block(key: DesKey, block: bytes) -> bytes:
    return int_to_bytes(
        crypt_int_ref(bytes_to_int(block), key._dec_subkeys), BLOCK_SIZE
    )


def ecb_encrypt_ref(key: DesKey, data: bytes) -> bytes:
    _require_blocks(data, "plaintext")
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        out += _encrypt_block(key, data[i : i + BLOCK_SIZE])
    return bytes(out)


def ecb_decrypt_ref(key: DesKey, data: bytes) -> bytes:
    _require_blocks(data, "ciphertext")
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        out += _decrypt_block(key, data[i : i + BLOCK_SIZE])
    return bytes(out)


def cbc_encrypt_ref(key: DesKey, data: bytes, iv: bytes = modes.ZERO_IV) -> bytes:
    _require_blocks(data, "plaintext")
    prev = _require_iv(iv)
    subkeys = key._enc_subkeys
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes_to_int(data[i : i + BLOCK_SIZE])
        prev = crypt_int_ref(block ^ prev, subkeys)
        out += int_to_bytes(prev, BLOCK_SIZE)
    return bytes(out)


def cbc_decrypt_ref(key: DesKey, data: bytes, iv: bytes = modes.ZERO_IV) -> bytes:
    _require_blocks(data, "ciphertext")
    prev = _require_iv(iv)
    subkeys = key._dec_subkeys
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes_to_int(data[i : i + BLOCK_SIZE])
        out += int_to_bytes(crypt_int_ref(block, subkeys) ^ prev, BLOCK_SIZE)
        prev = block
    return bytes(out)


def pcbc_encrypt_ref(key: DesKey, data: bytes, iv: bytes = modes.ZERO_IV) -> bytes:
    _require_blocks(data, "plaintext")
    chain = _require_iv(iv)  # holds P_{i-1} xor C_{i-1}
    subkeys = key._enc_subkeys
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        plain = bytes_to_int(data[i : i + BLOCK_SIZE])
        cipher = crypt_int_ref(plain ^ chain, subkeys)
        out += int_to_bytes(cipher, BLOCK_SIZE)
        chain = (plain ^ cipher) & _MASK64
    return bytes(out)


def pcbc_decrypt_ref(key: DesKey, data: bytes, iv: bytes = modes.ZERO_IV) -> bytes:
    _require_blocks(data, "ciphertext")
    chain = _require_iv(iv)
    subkeys = key._dec_subkeys
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        cipher = bytes_to_int(data[i : i + BLOCK_SIZE])
        plain = crypt_int_ref(cipher, subkeys) ^ chain
        out += int_to_bytes(plain, BLOCK_SIZE)
        chain = (plain ^ cipher) & _MASK64
    return bytes(out)


#: Mode → reference kernel, mirroring ``modes._ENCRYPTORS``.
REF_ENCRYPTORS = {
    modes.Mode.ECB: lambda key, data, iv: ecb_encrypt_ref(key, data),
    modes.Mode.CBC: cbc_encrypt_ref,
    modes.Mode.PCBC: pcbc_encrypt_ref,
}

REF_DECRYPTORS = {
    modes.Mode.ECB: lambda key, data, iv: ecb_decrypt_ref(key, data),
    modes.Mode.CBC: cbc_decrypt_ref,
    modes.Mode.PCBC: pcbc_decrypt_ref,
}


@contextmanager
def reference_kernels():
    """Run the enclosed block on the pre-optimization hot path.

    Swaps the byte-path kernels into ``seal``/``unseal`` dispatch and
    disables the key-schedule caches (via
    :func:`repro.crypto.keycache.caches_disabled`, which the database
    and master-key caches also consult).  The perf benchmarks wrap their
    "before" leg in this so both legs of the A/B ratio come from the
    same process, same seed, same run.
    """
    saved_enc = dict(modes._ENCRYPTORS)
    saved_dec = dict(modes._DECRYPTORS)
    modes._ENCRYPTORS.update(REF_ENCRYPTORS)
    modes._DECRYPTORS.update(REF_DECRYPTORS)
    try:
        with keycache.caches_disabled():
            yield
    finally:
        modes._ENCRYPTORS.update(saved_enc)
        modes._DECRYPTORS.update(saved_dec)
