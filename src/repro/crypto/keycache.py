"""Process-wide key-schedule caching.

Profiling the Figure 5-13 flows shows that a large share of crypto time
is spent not in DES rounds but in *re-deriving key schedules*: every
``Ticket.key`` access, every principal key unsealed from the database,
and every ``string_to_key`` call used to rebuild the sixteen round
subkeys from the same 8 bytes.  This module gives the hot paths two
bounded LRU caches:

* :func:`des_key_from_bytes` — 8-byte key material → scheduled
  :class:`~repro.crypto.des.DesKey` (reached via ``DesKey.from_bytes``);
* :func:`memoized_string_to_key` — (password, salt) → derived key
  (reached via :func:`repro.crypto.string2key.string_to_key`).

``DesKey`` instances are immutable after construction, so sharing one
scheduled key between callers is safe.

Hit/miss traffic is counted process-wide (:func:`stats`) and can also be
mirrored into any :class:`repro.obs.MetricsRegistry` as
``crypto.keyschedule_total{result="hit"|"miss"}`` via
:func:`attach_metrics` — :class:`repro.realm.Realm` attaches its
network's registry automatically.

:func:`caches_disabled` turns the whole layer off (used by the perf
benchmarks' "before" baseline, and by the database-side caches which
consult :func:`caching_enabled`).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.des import DesKey

#: Distinct (key bytes, allow_weak) schedules kept; at Athena scale the
#: working set is principals + live session keys, well under this.
KEY_CACHE_SIZE = 4096
#: Distinct (password, salt) derivations kept.
S2K_CACHE_SIZE = 1024
#: Distinct sealed-ticket skeletons kept: one per hot (service key,
#: ticket prefix) pair — i.e. per (server, client, address) tuple the
#: KDC issues for repeatedly.
SKELETON_CACHE_SIZE = 2048


class _LruCache:
    """A small OrderedDict-backed LRU (move-to-end on hit)."""

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        data = self._data
        value = data.get(key)
        if value is not None:
            data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        data = self._data
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


_key_cache = _LruCache(KEY_CACHE_SIZE)
_s2k_cache = _LruCache(S2K_CACHE_SIZE)
_skeleton_cache = _LruCache(SKELETON_CACHE_SIZE)
_enabled = True
_hits = 0
_misses = 0
_skeleton_hits = 0
_skeleton_misses = 0

#: Live metric sinks: (registry weakref, hit counter, miss counter).
_sinks: List[Tuple[weakref.ref, object, object]] = []


def caching_enabled() -> bool:
    """True unless inside :func:`caches_disabled` — consulted by the
    database/masterkey caches so one switch covers every layer."""
    return _enabled


@contextmanager
def caches_disabled():
    """Temporarily bypass (and empty) every key-schedule cache.

    The perf benchmarks run their "before" leg under this, so the
    baseline measures genuine per-request re-derivation.
    """
    global _enabled
    previous = _enabled
    _enabled = False
    clear()
    try:
        yield
    finally:
        _enabled = previous


def clear() -> None:
    """Drop all cached schedules and skeletons (stats and sinks kept)."""
    _key_cache.clear()
    _s2k_cache.clear()
    _skeleton_cache.clear()


def stats() -> Dict[str, int]:
    """Process-wide cache traffic: ``{"hit": ..., "miss": ...}``."""
    return {"hit": _hits, "miss": _misses}


def reset_stats() -> None:
    global _hits, _misses, _skeleton_hits, _skeleton_misses
    _hits = 0
    _misses = 0
    _skeleton_hits = 0
    _skeleton_misses = 0


def attach_metrics(metrics, labels: Optional[dict] = None) -> None:
    """Mirror future hit/miss events into ``metrics`` as
    ``crypto.keyschedule_total{result}``.  Attaching the same registry
    twice is a no-op; dead registries are pruned on the next attach."""
    _sinks[:] = [s for s in _sinks if s[0]() is not None]
    for ref, _, _ in _sinks:
        if ref() is metrics:
            return
    base = dict(labels or {})
    hit = metrics.counter(
        "crypto.keyschedule_total", {**base, "result": "hit"}
    )
    miss = metrics.counter(
        "crypto.keyschedule_total", {**base, "result": "miss"}
    )
    _sinks.append((weakref.ref(metrics), hit, miss))


def _record(hit: bool) -> None:
    global _hits, _misses
    if hit:
        _hits += 1
    else:
        _misses += 1
    for ref, hit_counter, miss_counter in _sinks:
        if ref() is not None:
            (hit_counter if hit else miss_counter).inc()


def des_key_from_bytes(key: bytes, allow_weak: bool = False) -> DesKey:
    """Schedule-cached equivalent of ``DesKey(key, allow_weak)``."""
    if not _enabled:
        return DesKey(key, allow_weak)
    cache_key = (bytes(key), allow_weak)
    cached = _key_cache.get(cache_key)
    if cached is not None:
        _record(True)
        return cached
    scheduled = DesKey(cache_key[0], allow_weak)
    _key_cache.put(cache_key, scheduled)
    _record(False)
    return scheduled


def memoized_string_to_key(
    password: str, salt: str, derive: Callable[[str, str], DesKey]
) -> DesKey:
    """Cache wrapper for the string-to-key one-way function.

    ``derive`` is the real derivation; it runs only on a miss.  The KDC
    never sees passwords, so this cache serves the *client* side —
    kinit-then-preauth flows that would otherwise derive the same key
    two or three times per login.
    """
    if not _enabled:
        return derive(password, salt)
    cache_key = (password, salt)
    cached = _s2k_cache.get(cache_key)
    if cached is not None:
        _record(True)
        return cached
    derived = derive(password, salt)
    _s2k_cache.put(cache_key, derived)
    _record(False)
    return derived


# --------------------------------------------------------------------------
# Sealed-ticket skeletons.
#
# A skeleton is the resumable PCBC state of a sealed ticket's fixed
# prefix — the seal header plus the server/client/address fields that
# repeat for every ticket a hot (client, server) pair is issued (see
# repro.core.ticket.seal_ticket_cached).  Entries are *content
# addressed*: the cache key is the sealing key's bytes plus the literal
# prefix plaintext (and total length), so a rotated service key or a
# changed principal can never be served a stale prefix — a mutation
# simply misses.  The journal-driven invalidation hook
# (:func:`invalidate_skeletons`, wired to database mutation listeners by
# the KDC) exists to evict now-dead entries promptly, not for
# correctness.
#
# ``caches_disabled()`` covers this layer too: while disabled,
# ``skeleton_get`` always misses and ``skeleton_put`` drops the entry,
# so the benchmarks' cache-off legs measure full per-request sealing.
# --------------------------------------------------------------------------


def skeleton_get(key: Tuple):
    """Cached (cipher prefix, chain) for a sealing-key/prefix pair, or
    None.  Hits/misses feed ``skeleton_stats``."""
    global _skeleton_hits, _skeleton_misses
    if not _enabled:
        return None
    state = _skeleton_cache.get(key)
    if state is None:
        _skeleton_misses += 1
    else:
        _skeleton_hits += 1
    return state


def skeleton_put(key: Tuple, state) -> None:
    if _enabled:
        _skeleton_cache.put(key, state)


def invalidate_skeletons() -> int:
    """Evict every cached skeleton; returns how many were dropped.

    Called (via the KDC's database mutation listener) whenever a
    principal record changes — key rotation, deletion, attribute edits.
    Correctness never depends on this (entries are content-addressed);
    it reclaims entries that can no longer hit.
    """
    dropped = len(_skeleton_cache)
    _skeleton_cache.clear()
    return dropped


def skeleton_stats() -> Dict[str, int]:
    """Skeleton cache traffic: ``{"hit": ..., "miss": ..., "size": ...}``."""
    return {
        "hit": _skeleton_hits,
        "miss": _skeleton_misses,
        "size": len(_skeleton_cache),
    }
