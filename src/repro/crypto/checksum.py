"""Message checksums used by the Kerberos protocols.

Two checksums, matching the two uses in the paper:

* :func:`cbc_mac` — a DES-CBC message authentication code.  Figure 13:
  *"First kprop sends a checksum of the new database it is about to send.
  The checksum is encrypted in the Kerberos master database key"* — that
  checksum is this MAC.  It is keyed, so only holders of the key can
  forge it.
* :func:`quad_cksum` — the fast quadratic checksum the historical
  implementation used for *safe messages* (authenticated but not
  encrypted application data).  It is seeded with the session key, making
  it unforgeable without the seed while remaining much cheaper than a
  full DES pass — the "tradeoffs between speed and security" of
  Section 2.2.
"""

from __future__ import annotations

import hmac as _hmac
import struct

from repro.crypto.bits import bytes_to_int
from repro.crypto.des import BLOCK_SIZE, DesKey
from repro.crypto.modes import cbc_encrypt


def cbc_mac(key: DesKey, data: bytes) -> bytes:
    """DES-CBC MAC: the final cipher block of a zero-IV CBC encryption.

    The data is length-prefixed before MAC-ing so that messages that
    differ only by trailing zero padding yield different MACs.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"data must be bytes, got {type(data).__name__}")
    framed = len(data).to_bytes(8, "big") + bytes(data)
    framed += b"\x00" * ((-len(framed)) % BLOCK_SIZE)
    return cbc_encrypt(key, framed)[-BLOCK_SIZE:]


def verify_cbc_mac(key: DesKey, data: bytes, mac: bytes) -> bool:
    """Constant-time comparison of a received MAC against a fresh one."""
    return _hmac.compare_digest(cbc_mac(key, data), bytes(mac))


# Modulus for the quadratic checksum: the Mersenne prime 2**31 - 1, as in
# the historical quad_cksum.
_QUAD_MOD = 0x7FFFFFFF


def quad_cksum(data: bytes, seed: bytes) -> int:
    """Seeded quadratic checksum over 4-byte words, mod 2**31 - 1.

    ``z_{i+1} = (z_i + w_i)^2 mod (2**31 - 1)`` chained over the little
    words of the message, starting from a seed derived from the key.
    Returns a 32-bit integer.  Not cryptographically strong — the paper's
    own implementation accepted that tradeoff for safe messages — but
    unforgeable without the seed for casual attackers, and fast.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"data must be bytes, got {type(data).__name__}")
    if len(seed) < 8:
        raise ValueError("seed must be at least 8 bytes (a DES key)")
    z = bytes_to_int(seed[:4]) % _QUAD_MOD
    z2 = bytes_to_int(seed[4:8]) % _QUAD_MOD
    padded = bytes(data) + b"\x00" * ((-len(data)) % 4)
    # One struct call turns the whole message into 4-byte words — safe
    # messages are the high-volume case this checksum exists for.
    for word in struct.unpack(f">{len(padded) // 4}I", padded):
        z = ((z + word) * (z + word) + z2) % _QUAD_MOD
        z2 = (z2 + z) % _QUAD_MOD
    # Mix in the length so prefixes do not collide trivially.
    z = ((z + len(data)) * (z + len(data)) + z2) % _QUAD_MOD
    return z


def quad_cksum_key(key: DesKey, data: bytes) -> int:
    """Convenience wrapper seeding :func:`quad_cksum` from a DES key."""
    return quad_cksum(data, key.key_bytes)
