"""The one-way function from a user's password to their DES private key.

Paper, "Conventions": *"In the case of a user, the private key is the
result of a one-way function applied to the user's password."*  And in
Section 4.2: *"The password is converted to a DES key and used to decrypt
the response from the authentication server."*

This module implements the historical Kerberos-4 ``des_string_to_key``
algorithm:

1. pad the password with NULs to a multiple of 8 bytes;
2. *fan-fold* the 8-byte chunks into a single 64-bit value, reversing the
   bit order of every second chunk before XOR-ing it in;
3. fix the folded value to odd parity per byte (and nudge it away from a
   weak key) to obtain a temporary key;
4. compute the DES-CBC checksum of the padded password under that
   temporary key (with the key itself as IV); the final cipher block,
   parity-fixed and weak-key-nudged, is the user's private key.

Step 4 is what makes the function one-way: recovering the password from
the key requires inverting a DES-CBC MAC.
"""

from __future__ import annotations

from repro.crypto.bits import reverse_block_bits
from repro.crypto.des import (
    BLOCK_SIZE,
    DesKey,
    WEAK_KEYS,
    fix_parity,
)
from repro.crypto.modes import cbc_encrypt


def _unweaken(key: bytes) -> bytes:
    """Nudge a weak key as the historical library did (XOR last byte 0xF0)."""
    if key in WEAK_KEYS:
        key = key[:-1] + bytes([key[-1] ^ 0xF0])
    return key


def string_to_key(password: str, salt: str = "") -> DesKey:
    """Derive a user's DES private key from a password.

    ``salt`` is appended to the password before folding.  The 1988
    implementation had no salt; realm-based salting is offered for the
    cross-realm tests and defaults to the faithful empty string.

    Derivations are memoized per ``(password, salt)``
    (:mod:`repro.crypto.keycache`): a workstation login runs this
    one-way function several times — kinit, pre-authentication, reply
    unsealing — and the fan-fold + CBC-MAC need only happen once.
    """
    from repro.crypto.keycache import memoized_string_to_key

    return memoized_string_to_key(password, salt, _derive_string_to_key)


def _derive_string_to_key(password: str, salt: str) -> DesKey:
    """The actual (uncached) fan-fold + CBC-MAC derivation."""
    if not isinstance(password, str):
        raise TypeError(f"password must be str, got {type(password).__name__}")
    data = (password + salt).encode("utf-8")
    if not data:
        raise ValueError("password must not be empty")

    padded = data + b"\x00" * ((-len(data)) % BLOCK_SIZE)

    # Fan-fold: XOR successive 8-byte chunks, bit-reversing every second one.
    folded = bytearray(BLOCK_SIZE)
    forward = True
    for i in range(0, len(padded), BLOCK_SIZE):
        chunk = padded[i : i + BLOCK_SIZE]
        if not forward:
            chunk = reverse_block_bits(chunk)
        for j in range(BLOCK_SIZE):
            folded[j] ^= chunk[j]
        forward = not forward

    temp = _unweaken(fix_parity(bytes(folded)))
    temp_key = DesKey(temp, allow_weak=True)

    # CBC-checksum the padded password under the temporary key; the last
    # ciphertext block becomes the real key.
    mac = cbc_encrypt(temp_key, padded, iv=temp)[-BLOCK_SIZE:]
    final = _unweaken(fix_parity(mac))
    return DesKey(final, allow_weak=True)
