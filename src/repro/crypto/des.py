"""The Data Encryption Standard (FIPS PUB 46), implemented from scratch.

This is the block cipher underneath every Kerberos operation in the paper:
tickets are "encrypted using the key of the server", KDC replies are
"encrypted in the client's private key", and authenticators are "encrypted
in the session key".

The implementation follows the standard exactly:

* 64-bit blocks, 64-bit keys of which 56 bits are used (one parity bit
  per byte, odd parity);
* initial permutation IP, 16 Feistel rounds, final permutation FP;
* the round function expands 32 bits to 48 (table E), XORs a 48-bit
  subkey, passes 6-bit groups through the eight S-boxes, and permutes
  the 32-bit result (table P);
* the key schedule applies PC-1, splits into two 28-bit halves, rotates
  per the shift schedule, and extracts each subkey with PC-2.

For speed in pure Python the permutations are compiled to per-byte lookup
tables (:mod:`repro.crypto.bits`) and the P permutation is folded into
the S-boxes ("SP boxes"), a standard implementation technique that does
not change the function computed.  On top of that, the block function
used on the hot path (:func:`crypt_int`) pairs adjacent lookup tables
(two E bytes per probe, two SP boxes per probe) and unrolls the sixteen
Feistel rounds, roughly halving the Python-level work per block.  The
straightforward per-round kernel is kept as :func:`crypt_int_ref` — the
correctness oracle the property tests pin ``crypt_int`` against, and the
"before" baseline of ``benchmarks/test_bench_perf_hotpath.py``.
Correctness is pinned by published test vectors in
``tests/crypto/test_des.py``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crypto.bits import (
    apply_permutation,
    bytes_to_int,
    compile_permutation,
    int_to_bytes,
    rotate_left_28,
)

BLOCK_SIZE = 8
KEY_SIZE = 8


class KeyError_(ValueError):
    """Raised for malformed DES keys (wrong length, rejected weak key)."""


# --------------------------------------------------------------------------
# FIPS 46 tables (1-indexed from the most significant bit, as published).
# --------------------------------------------------------------------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

_P = (
    16, 7, 20, 21, 29, 12, 28, 17,
    1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9,
    19, 13, 30, 6, 22, 11, 4, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_SBOXES = (
    (
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ),
    (
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ),
    (
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ),
    (
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ),
    (
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ),
    (
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ),
    (
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ),
    (
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ),
)

# --------------------------------------------------------------------------
# Compiled permutations and SP boxes (built once at import).
# --------------------------------------------------------------------------

_IP_C = compile_permutation(_IP, 64)
_FP_C = compile_permutation(_FP, 64)
_E_C = compile_permutation(_E, 32)
_PC1_C = compile_permutation(_PC1, 64)
_PC2_C = compile_permutation(_PC2, 56)
_P_C = compile_permutation(_P, 32)


def _build_sp_boxes() -> Tuple[Tuple[int, ...], ...]:
    """Fold the P permutation into each S-box.

    ``SP[i][six]`` is the 32-bit contribution of S-box ``i`` (fed the
    6-bit group ``six``) *after* the P permutation — so a round's S+P
    stage becomes eight lookups OR-ed together.
    """
    sp: List[Tuple[int, ...]] = []
    for i, sbox in enumerate(_SBOXES):
        table = []
        for six in range(64):
            row = ((six >> 4) & 0b10) | (six & 0b01)
            col = (six >> 1) & 0x0F
            s_out = sbox[row * 16 + col]
            placed = s_out << (28 - 4 * i)
            table.append(apply_permutation(_P_C, placed))
        sp.append(tuple(table))
    return tuple(sp)


_SP = _build_sp_boxes()

# --------------------------------------------------------------------------
# Parity and weak keys.
# --------------------------------------------------------------------------

# The four weak keys and twelve semi-weak keys from FIPS 74.  Weak keys
# produce palindromic key schedules (encryption == decryption); Kerberos
# key generation avoids them.
WEAK_KEYS = frozenset(
    bytes.fromhex(h)
    for h in (
        # weak
        "0101010101010101",
        "fefefefefefefefe",
        "1f1f1f1f0e0e0e0e",
        "e0e0e0e0f1f1f1f1",
        # semi-weak pairs
        "01fe01fe01fe01fe", "fe01fe01fe01fe01",
        "1fe01fe00ef10ef1", "e01fe01ff10ef10e",
        "01e001e001f101f1", "e001e001f101f101",
        "1ffe1ffe0efe0efe", "fe1ffe1ffe0efe0e",
        "011f011f010e010e", "1f011f010e010e01",
        "e0fee0fef1fef1fe", "fee0fee0fef1fef1",
    )
)


def _odd_parity_byte(value: int) -> int:
    """Return ``value`` with its low bit set so the byte has odd parity."""
    v = value & 0xFE
    ones = bin(v).count("1")
    return v | (0 if ones % 2 == 1 else 1)


_PARITY_TABLE = tuple(_odd_parity_byte(v) for v in range(256))


def fix_parity(key: bytes) -> bytes:
    """Set each byte of an 8-byte key to odd parity (FIPS requirement)."""
    if len(key) != KEY_SIZE:
        raise KeyError_(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
    return bytes(_PARITY_TABLE[b] for b in key)


def check_parity(key: bytes) -> bool:
    """True if every byte of the key has odd parity."""
    if len(key) != KEY_SIZE:
        raise KeyError_(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
    return all(bin(b).count("1") % 2 == 1 for b in key)


def is_weak_key(key: bytes) -> bool:
    """True if the key is one of the FIPS 74 weak or semi-weak keys."""
    if len(key) != KEY_SIZE:
        raise KeyError_(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
    return fix_parity(key) in WEAK_KEYS


# --------------------------------------------------------------------------
# Key schedule and the cipher proper.
# --------------------------------------------------------------------------


def _key_schedule(key: bytes) -> Tuple[int, ...]:
    """Derive the sixteen 48-bit round subkeys from an 8-byte key."""
    k56 = apply_permutation(_PC1_C, bytes_to_int(key))
    c = (k56 >> 28) & 0x0FFFFFFF
    d = k56 & 0x0FFFFFFF
    subkeys = []
    for shift in _SHIFTS:
        c = rotate_left_28(c, shift)
        d = rotate_left_28(d, shift)
        subkeys.append(apply_permutation(_PC2_C, (c << 28) | d))
    return tuple(subkeys)


def _feistel(right: int, subkey: int) -> int:
    """The DES round function f(R, K)."""
    t = apply_permutation(_E_C, right) ^ subkey
    sp = _SP
    return (
        sp[0][(t >> 42) & 0x3F]
        | sp[1][(t >> 36) & 0x3F]
        | sp[2][(t >> 30) & 0x3F]
        | sp[3][(t >> 24) & 0x3F]
        | sp[4][(t >> 18) & 0x3F]
        | sp[5][(t >> 12) & 0x3F]
        | sp[6][(t >> 6) & 0x3F]
        | sp[7][t & 0x3F]
    )


def crypt_int_ref(block: int, subkeys) -> int:
    """The straightforward per-round block function (reference kernel).

    Computes exactly the same permutation as :func:`crypt_int`; kept as
    the oracle for the kernel-equivalence property tests and as the
    benchmark baseline.  Pass ``key._enc_subkeys`` to encrypt,
    ``key._dec_subkeys`` to decrypt.
    """
    b = apply_permutation(_IP_C, block)
    left = (b >> 32) & 0xFFFFFFFF
    right = b & 0xFFFFFFFF
    for subkey in subkeys:
        left, right = right, left ^ _feistel(right, subkey)
    # Final swap is built into taking (R16, L16).
    return apply_permutation(_FP_C, (right << 32) | left)


# --------------------------------------------------------------------------
# The hot-path kernel: paired SP tables + unrolled rounds.
#
# One table folding beyond the per-byte compiled permutations:
# ``_SP01``..``_SP67`` merge adjacent SP boxes so one probe consumes
# 12 bits of E(R) xor K (four lookups per round instead of eight).  The
# E expansion stays on the per-byte tables: pairing it to 16-bit probes
# was measured *slower* here — the 65536-entry tables (several MB of
# tuple slots plus int objects) overflow a desktop-class L2 and turn
# every probe into a cache miss, while the byte tables plus the four
# 4096-entry SP pairs stay resident.
#
# The 16 rounds are written out explicitly, alternating the two
# half-block variables so the (L, R) swap costs nothing.  All of this is
# just loop/call/memory-overhead removal — the function computed is
# pinned bit-exact against crypt_int_ref by
# tests/crypto/test_perf_kernels.py.
# --------------------------------------------------------------------------

def _pair6(a, b) -> Tuple[int, ...]:
    """Merge two 6-bit-indexed SP tables into one 12-bit-indexed table."""
    return tuple(a[i >> 6] | b[i & 0x3F] for i in range(4096))


_IP_B = _IP_C[0]   # eight per-byte tables for the initial permutation
_FP_B = _FP_C[0]   # ... and the final permutation
_E_B = _E_C[0]     # four per-byte tables for the E expansion
_SP01 = _pair6(_SP[0], _SP[1])
_SP23 = _pair6(_SP[2], _SP[3])
_SP45 = _pair6(_SP[4], _SP[5])
_SP67 = _pair6(_SP[6], _SP[7])


def crypt_int(
    block: int,
    subkeys,
    _ip=_IP_B,
    _fp=_FP_B,
    _e=_E_B,
    _sp01=_SP01,
    _sp23=_SP23,
    _sp45=_SP45,
    _sp67=_SP67,
) -> int:
    """One DES block operation on a 64-bit int (the hot-path kernel).

    Pass ``key._enc_subkeys`` to encrypt, ``key._dec_subkeys`` to
    decrypt.  The trailing parameters exist only to bind the lookup
    tables as locals; never pass them.
    """
    ip0, ip1, ip2, ip3, ip4, ip5, ip6, ip7 = _ip
    e0, e1, e2, e3 = _e
    k0, k1, k2, k3, k4, k5, k6, k7, k8, k9, k10, k11, k12, k13, k14, k15 = \
        subkeys
    b = (
        ip0[(block >> 56) & 255] | ip1[(block >> 48) & 255]
        | ip2[(block >> 40) & 255] | ip3[(block >> 32) & 255]
        | ip4[(block >> 24) & 255] | ip5[(block >> 16) & 255]
        | ip6[(block >> 8) & 255] | ip7[block & 255]
    )
    x = (b >> 32) & 0xFFFFFFFF     # L on even rounds (see crypt_int_ref)
    y = b & 0xFFFFFFFF             # R on even rounds
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k0
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k1
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k2
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k3
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k4
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k5
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k6
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k7
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k8
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k9
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k10
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k11
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k12
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k13
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[y >> 24] | e1[(y >> 16) & 255]
         | e2[(y >> 8) & 255] | e3[y & 255]) ^ k14
    x ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (e0[x >> 24] | e1[(x >> 16) & 255]
         | e2[(x >> 8) & 255] | e3[x & 255]) ^ k15
    y ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    # Pre-output is (R16, L16); after 16 alternations x is L16, y is R16.
    out = (y << 32) | x
    fp0, fp1, fp2, fp3, fp4, fp5, fp6, fp7 = _fp
    return (
        fp0[(out >> 56) & 255] | fp1[(out >> 48) & 255]
        | fp2[(out >> 40) & 255] | fp3[(out >> 32) & 255]
        | fp4[(out >> 24) & 255] | fp5[(out >> 16) & 255]
        | fp6[(out >> 8) & 255] | fp7[out & 255]
    )


# --------------------------------------------------------------------------
# The batch-plane kernel: two messages per pass, 16-bit E probes.
#
# ``crypt_int2`` runs the sixteen Feistel rounds over TWO independent
# (block, key-schedule) lanes in a single Python frame.  Interleaving
# the lanes amortizes the per-call frame and table-binding overhead,
# and the wider body makes a further table folding pay for itself:
# the E expansion here uses 16-bit paired probes (two input bytes per
# lookup, tables ``_E16_0``/``_E16_1``) instead of ``crypt_int``'s
# per-byte tables.  The 65536-entry tables were measured *slower* for
# the single-lane kernel on the original benchmark machine (see the
# note above ``crypt_int``); for the two-lane batch kernel the
# request-plane benchmark re-measures the choice on every run — its
# A/B legs gate the batch plane against the single-request plane, so
# a machine where this folding loses shows up as a gate failure, not
# a silent regression.
#
# PCBC chains are sequential *within* one message, so the two lanes
# must come from independent messages — which is exactly what a KDC
# batch provides (``repro.crypto.modes.seal_many``).  Bit-exactness of
# each lane against ``crypt_int_ref`` is pinned by the property suite
# in tests/crypto/test_perf_kernels.py.
# --------------------------------------------------------------------------

def _pair8(a, b) -> Tuple[int, ...]:
    """Merge two per-byte permutation tables into one 16-bit-indexed table."""
    return tuple(a[i >> 8] | b[i & 0xFF] for i in range(65536))


_E16_0 = _pair8(_E_B[0], _E_B[1])
_E16_1 = _pair8(_E_B[2], _E_B[3])


def crypt_int2(
    block_a: int,
    subkeys_a,
    block_b: int,
    subkeys_b,
    _ip=_IP_B,
    _fp=_FP_B,
    _e0=_E16_0,
    _e1=_E16_1,
    _sp01=_SP01,
    _sp23=_SP23,
    _sp45=_SP45,
    _sp67=_SP67,
) -> Tuple[int, int]:
    """Two independent DES block operations in one pass.

    Equivalent to ``(crypt_int(block_a, subkeys_a), crypt_int(block_b,
    subkeys_b))`` — same convention: pass ``_enc_subkeys`` to encrypt,
    ``_dec_subkeys`` to decrypt, per lane.  The trailing parameters
    bind the lookup tables as locals; never pass them.
    """
    ip0, ip1, ip2, ip3, ip4, ip5, ip6, ip7 = _ip
    ka0, ka1, ka2, ka3, ka4, ka5, ka6, ka7, \
        ka8, ka9, ka10, ka11, ka12, ka13, ka14, ka15 = subkeys_a
    kb0, kb1, kb2, kb3, kb4, kb5, kb6, kb7, \
        kb8, kb9, kb10, kb11, kb12, kb13, kb14, kb15 = subkeys_b
    b = (
        ip0[(block_a >> 56) & 255] | ip1[(block_a >> 48) & 255]
        | ip2[(block_a >> 40) & 255] | ip3[(block_a >> 32) & 255]
        | ip4[(block_a >> 24) & 255] | ip5[(block_a >> 16) & 255]
        | ip6[(block_a >> 8) & 255] | ip7[block_a & 255]
    )
    xa = (b >> 32) & 0xFFFFFFFF
    ya = b & 0xFFFFFFFF
    b = (
        ip0[(block_b >> 56) & 255] | ip1[(block_b >> 48) & 255]
        | ip2[(block_b >> 40) & 255] | ip3[(block_b >> 32) & 255]
        | ip4[(block_b >> 24) & 255] | ip5[(block_b >> 16) & 255]
        | ip6[(block_b >> 8) & 255] | ip7[block_b & 255]
    )
    xb = (b >> 32) & 0xFFFFFFFF
    yb = b & 0xFFFFFFFF
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka0
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb0
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka1
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb1
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka2
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb2
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka3
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb3
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka4
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb4
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka5
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb5
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka6
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb6
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka7
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb7
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka8
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb8
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka9
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb9
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka10
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb10
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka11
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb11
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka12
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb12
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka13
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb13
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[ya >> 16] | _e1[ya & 65535]) ^ ka14
    xa ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[yb >> 16] | _e1[yb & 65535]) ^ kb14
    xb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xa >> 16] | _e1[xa & 65535]) ^ ka15
    ya ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    t = (_e0[xb >> 16] | _e1[xb & 65535]) ^ kb15
    yb ^= (_sp01[t >> 36] | _sp23[(t >> 24) & 4095]
          | _sp45[(t >> 12) & 4095] | _sp67[t & 4095])
    out = (ya << 32) | xa
    fp0, fp1, fp2, fp3, fp4, fp5, fp6, fp7 = _fp
    ra = (
        fp0[(out >> 56) & 255] | fp1[(out >> 48) & 255]
        | fp2[(out >> 40) & 255] | fp3[(out >> 32) & 255]
        | fp4[(out >> 24) & 255] | fp5[(out >> 16) & 255]
        | fp6[(out >> 8) & 255] | fp7[out & 255]
    )
    out = (yb << 32) | xb
    rb = (
        fp0[(out >> 56) & 255] | fp1[(out >> 48) & 255]
        | fp2[(out >> 40) & 255] | fp3[(out >> 32) & 255]
        | fp4[(out >> 24) & 255] | fp5[(out >> 16) & 255]
        | fp6[(out >> 8) & 255] | fp7[out & 255]
    )
    return ra, rb


#: Resolved lazily by DesKey.from_bytes (keycache imports this module).
_from_bytes_cached = None


class DesKey:
    """A scheduled DES key.

    >>> key = DesKey(bytes.fromhex("133457799BBCDFF1"))
    >>> key.encrypt_block(bytes.fromhex("0123456789ABCDEF")).hex()
    '85e813540f0ab405'

    ``allow_weak`` admits the FIPS weak keys (needed only by tests that
    demonstrate why they are rejected elsewhere).  Parity is *normalized*
    rather than rejected, matching the historical library: key bytes have
    their parity bit fixed up on entry.

    Constructing a ``DesKey`` runs the full 16-round key schedule.  Hot
    paths that repeatedly rebuild keys from the same 8 bytes (ticket
    session keys, principal keys unsealed per request) should use
    :meth:`from_bytes`, which consults the process-wide schedule cache
    in :mod:`repro.crypto.keycache`.
    """

    __slots__ = ("_key", "_enc_subkeys", "_dec_subkeys")

    @classmethod
    def from_bytes(cls, key: bytes, allow_weak: bool = False) -> "DesKey":
        """Cached constructor: like ``DesKey(key, allow_weak)`` but the
        derived key schedule is reused across calls (LRU, see
        :mod:`repro.crypto.keycache`)."""
        global _from_bytes_cached
        if _from_bytes_cached is None:
            from repro.crypto.keycache import des_key_from_bytes
            _from_bytes_cached = des_key_from_bytes
        return _from_bytes_cached(key, allow_weak)

    def __init__(self, key: bytes, allow_weak: bool = False) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise KeyError_(f"key must be bytes, got {type(key).__name__}")
        if len(key) != KEY_SIZE:
            raise KeyError_(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
        key = fix_parity(bytes(key))
        if not allow_weak and key in WEAK_KEYS:
            raise KeyError_(f"refusing weak DES key {key.hex()}")
        self._key = key
        self._enc_subkeys = _key_schedule(key)
        self._dec_subkeys = tuple(reversed(self._enc_subkeys))

    @property
    def key_bytes(self) -> bytes:
        return self._key

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        out = crypt_int(bytes_to_int(block), self._enc_subkeys)
        return int_to_bytes(out, BLOCK_SIZE)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        out = crypt_int(bytes_to_int(block), self._dec_subkeys)
        return int_to_bytes(out, BLOCK_SIZE)

    # Integer-block variants used by the block modes (avoids bytes<->int
    # conversion churn in inner loops).
    def encrypt_block_int(self, block: int) -> int:
        return crypt_int(block, self._enc_subkeys)

    def decrypt_block_int(self, block: int) -> int:
        return crypt_int(block, self._dec_subkeys)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DesKey):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        # Never print key material; show a short fingerprint instead.
        fp = hex(hash(self._key) & 0xFFFF)
        return f"DesKey(<fingerprint {fp}>)"
