"""Bit-permutation machinery for the DES implementation.

DES is defined (FIPS 46) in terms of tables that scatter individual bits
of a value into new positions.  Applying such a table bit-by-bit costs one
loop iteration per output bit; instead we *compile* each table into
per-input-byte lookup tables once at import time, so applying a
permutation costs one table lookup and one OR per input byte.

Conventions (matching the FIPS tables):

* values are Python ints holding ``width`` bits, most significant first;
* permutation tables are 1-indexed from the most significant bit of the
  input, exactly as printed in the standard.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

CompiledPermutation = Tuple[Tuple[Tuple[int, ...], ...], int, int]


def compile_permutation(
    table: Sequence[int], in_width: int
) -> CompiledPermutation:
    """Compile a FIPS-style permutation table for fast application.

    ``table[j]`` says which input bit (1-indexed from the MSB of an
    ``in_width``-bit value) supplies output bit ``j`` (0-indexed from the
    MSB of the result).  ``in_width`` must be a multiple of 8.
    """
    if in_width % 8 != 0:
        raise ValueError(f"in_width {in_width} is not a multiple of 8")
    out_width = len(table)
    nbytes = in_width // 8
    lookup: List[List[int]] = [[0] * 256 for _ in range(nbytes)]
    for out_pos, in_pos in enumerate(table):
        if not 1 <= in_pos <= in_width:
            raise ValueError(f"table entry {in_pos} outside input width")
        src = in_pos - 1  # 0-indexed from MSB
        byte_idx = src // 8
        bit_in_byte = 7 - (src % 8)  # position within the byte, LSB = 0
        out_shift = out_width - 1 - out_pos
        for value in range(256):
            if (value >> bit_in_byte) & 1:
                lookup[byte_idx][value] |= 1 << out_shift
    frozen = tuple(tuple(row) for row in lookup)
    return (frozen, nbytes, in_width)


def apply_permutation(compiled: CompiledPermutation, value: int) -> int:
    """Apply a compiled permutation to ``value``."""
    lookup, nbytes, in_width = compiled
    out = 0
    for i in range(nbytes):
        shift = in_width - 8 * (i + 1)
        out |= lookup[i][(value >> shift) & 0xFF]
    return out


def rotate_left_28(value: int, count: int) -> int:
    """Rotate a 28-bit value left by ``count`` bits (DES key schedule)."""
    count %= 28
    return ((value << count) | (value >> (28 - count))) & 0x0FFFFFFF


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def reverse_block_bits(block: bytes) -> bytes:
    """Reverse the bit order of an 8-byte block (last bit becomes first).

    Used by the historical DES string-to-key "fan-fold": alternate 8-byte
    chunks of the password are folded in bit-reversed.
    """
    if len(block) != 8:
        raise ValueError(f"expected an 8-byte block, got {len(block)}")
    value = bytes_to_int(block)
    out = 0
    for _ in range(64):
        out = (out << 1) | (value & 1)
        value >>= 1
    return int_to_bytes(out, 8)
