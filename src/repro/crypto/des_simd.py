"""Wide-lane DES: one Feistel pass over N independent messages.

:func:`repro.crypto.des.crypt_int2` interleaves two messages per pass;
this module generalizes the idea to *all* messages of a KDC batch at
once.  Each of the 16 rounds becomes a handful of table *gathers* over
an N-wide vector of block states (numpy fancy indexing), so the
per-round interpreter overhead — the dominant cost of the scalar
kernels — is paid once per batch instead of once per block.

The tables are the exact ones the scalar kernels use (`_IP_B`/`_FP_B`
byte permutations, the 16-bit paired E tables, the 12-bit paired SP
tables), converted to ``uint64`` arrays on first use, so the wide path
is bit-identical by construction; the property suite asserts it against
``crypt_int_ref`` anyway.

numpy is optional: the container may lack it, and
:func:`repro.crypto.reference.reference_kernels` must be able to
benchmark without it.  Everything here degrades to ``available() ==
False`` and the callers (``repro.crypto.modes``) fall back to the
two-lane kernel.
"""

from typing import Optional

try:  # gated: the wide path is an accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

from repro.crypto import des as _des

#: Fewer active lanes than this and the scalar pair kernel wins: a wide
#: round costs ~200 vector dispatches regardless of width, so it needs
#: enough lanes to amortize them.
MIN_LANES = 8

_tables = None


def available() -> bool:
    """True when the wide kernel can run (numpy importable)."""
    return _np is not None


def _get_tables():
    """The scalar kernels' lookup tables as uint64 numpy arrays."""
    global _tables
    if _tables is None:
        u64 = lambda t: _np.array(t, dtype=_np.uint64)  # noqa: E731
        _tables = (
            tuple(u64(t) for t in _des._IP_B),
            tuple(u64(t) for t in _des._FP_B),
            u64(_des._E16_0),
            u64(_des._E16_1),
            u64(_des._SP01),
            u64(_des._SP23),
            u64(_des._SP45),
            u64(_des._SP67),
        )
    return _tables


def keymat(subkeys_per_lane) -> "Optional[_np.ndarray]":
    """Stack per-lane 16-round subkey tuples into a (16, N) array."""
    return _np.array(subkeys_per_lane, dtype=_np.uint64).T


def crypt_wide(blocks, km):
    """One DES operation on each lane of an N-wide block vector.

    ``blocks`` is a uint64 array of input blocks, ``km`` a (16, N)
    uint64 array of round keys (``keymat`` of ``_enc_subkeys`` to
    encrypt, of ``_dec_subkeys`` to decrypt).  Returns the output
    blocks as a new uint64 array; lane *i* equals
    ``crypt_int(blocks[i], subkeys[i])``.
    """
    ip, fp, e0, e1, sp01, sp23, sp45, sp67 = _get_tables()
    b = ip[0][(blocks >> 56) & 255]
    b |= ip[1][(blocks >> 48) & 255]
    b |= ip[2][(blocks >> 40) & 255]
    b |= ip[3][(blocks >> 32) & 255]
    b |= ip[4][(blocks >> 24) & 255]
    b |= ip[5][(blocks >> 16) & 255]
    b |= ip[6][(blocks >> 8) & 255]
    b |= ip[7][blocks & 255]
    x = (b >> 32) & 0xFFFFFFFF
    y = b & 0xFFFFFFFF
    for r in range(0, 16, 2):
        t = (e0[y >> 16] | e1[y & 65535]) ^ km[r]
        x = x ^ (sp01[t >> 36] | sp23[(t >> 24) & 4095]
                 | sp45[(t >> 12) & 4095] | sp67[t & 4095])
        t = (e0[x >> 16] | e1[x & 65535]) ^ km[r + 1]
        y = y ^ (sp01[t >> 36] | sp23[(t >> 24) & 4095]
                 | sp45[(t >> 12) & 4095] | sp67[t & 4095])
    # Swap halves and apply the final permutation, byte-at-a-time like
    # the scalar kernel.
    b = (y << 32) | x
    out = fp[0][(b >> 56) & 255]
    out |= fp[1][(b >> 48) & 255]
    out |= fp[2][(b >> 40) & 255]
    out |= fp[3][(b >> 32) & 255]
    out |= fp[4][(b >> 24) & 255]
    out |= fp[5][(b >> 16) & 255]
    out |= fp[6][(b >> 8) & 255]
    out |= fp[7][b & 255]
    return out
