"""The Kerberos encryption library (paper Section 2.2), built from scratch.

The paper: *"Encryption in Kerberos is based on DES, the Data Encryption
Standard. The encryption library implements those routines. Several methods
of encryption are provided, with tradeoffs between speed and security. An
extension to the DES Cypher Block Chaining (CBC) mode, called the
Propagating CBC mode, is also provided."*

This package is that library:

* :mod:`repro.crypto.des` — the full 16-round DES block cipher (FIPS 46),
  implemented from the published tables and verified against standard test
  vectors;
* :mod:`repro.crypto.modes` — ECB, CBC, and the paper's PCBC mode, plus a
  ``seal``/``unseal`` message layer whose tamper evidence *depends on*
  PCBC's whole-message error propagation (the property the paper cites);
* :mod:`repro.crypto.string2key` — the one-way function turning a user's
  password into a DES key ("the private key is the result of a one-way
  function applied to the user's password");
* :mod:`repro.crypto.checksum` — DES-CBC message authentication (used by
  database propagation, Figure 13) and the fast quadratic checksum used
  for safe messages;
* :mod:`repro.crypto.keygen` — session-key generation ("Kerberos also
  generates temporary private keys, called session keys");
* :mod:`repro.crypto.keycache` — process-wide key-schedule cache behind
  ``DesKey.from_bytes`` and ``string_to_key`` (metrics:
  ``crypto.keyschedule_total{result}``);
* :mod:`repro.crypto.reference` — the pre-optimization byte-path mode
  kernels, kept as the correctness oracle and the benchmarks' same-run
  "before" baseline.

As the paper notes, the encryption library is "an independent module, and
may be replaced" — nothing above this package touches DES internals; all
callers use :class:`DesKey`, ``seal``/``unseal`` and the checksums.
"""

from repro.crypto.des import (
    BLOCK_SIZE,
    DesKey,
    KeyError_ as DesKeyError,
    check_parity,
    fix_parity,
    is_weak_key,
)
from repro.crypto.modes import (
    Mode,
    IntegrityError,
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pcbc_decrypt,
    pcbc_decrypt_many,
    pcbc_encrypt,
    pcbc_encrypt_many,
    seal,
    seal_many,
    seal_prefix_state,
    seal_resume,
    seal_resume_many,
    unseal,
    unseal_many,
)
from repro.crypto.string2key import string_to_key
from repro.crypto.checksum import cbc_mac, quad_cksum, verify_cbc_mac
from repro.crypto.keygen import KeyGenerator
from repro.crypto import keycache

__all__ = [
    "BLOCK_SIZE",
    "DesKey",
    "DesKeyError",
    "IntegrityError",
    "KeyGenerator",
    "Mode",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_mac",
    "check_parity",
    "ecb_decrypt",
    "ecb_encrypt",
    "fix_parity",
    "is_weak_key",
    "keycache",
    "pcbc_decrypt",
    "pcbc_decrypt_many",
    "pcbc_encrypt",
    "pcbc_encrypt_many",
    "quad_cksum",
    "seal",
    "seal_many",
    "seal_prefix_state",
    "seal_resume",
    "seal_resume_many",
    "string_to_key",
    "unseal",
    "unseal_many",
]
