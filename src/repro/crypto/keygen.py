"""Session-key and random-key generation.

Paper, Section 2.1: *"Kerberos also generates temporary private keys,
called session keys, which are given to two clients and no one else."*
And Section 6.3, on registering servers: *"usually this is an
automatically generated random key"*.

The generator is a deterministic random bit generator built from DES in
counter mode: a seed key encrypts an incrementing counter, and each
output block (parity-fixed, weak keys skipped) becomes a fresh DES key.
Determinism matters for this reproduction — every experiment and test can
replay the exact same key stream from a seed — while the construction
still models the real property that session keys are unpredictable
without the generator's internal state.
"""

from __future__ import annotations

from repro.crypto.des import (
    BLOCK_SIZE,
    DesKey,
    WEAK_KEYS,
    fix_parity,
)

_DEFAULT_SEED = b"\x9aTHENA\x88\x17seed for the Kerberos reproduction"


def _seed_to_key(seed: bytes) -> DesKey:
    """Fold arbitrary seed bytes into a non-weak DES key."""
    folded = bytearray(BLOCK_SIZE)
    for i, b in enumerate(seed):
        folded[i % BLOCK_SIZE] ^= b
    folded[0] ^= len(seed) & 0xFF
    key = fix_parity(bytes(folded))
    if key in WEAK_KEYS:
        key = key[:-1] + bytes([key[-1] ^ 0xF0])
    return DesKey(key, allow_weak=True)


class KeyGenerator:
    """Deterministic generator of DES session keys and random bytes.

    >>> gen = KeyGenerator(seed=b"example")
    >>> k1 = gen.session_key()
    >>> k2 = gen.session_key()
    >>> k1 == k2
    False
    >>> KeyGenerator(seed=b"example").session_key() == k1
    True
    """

    def __init__(self, seed: bytes = _DEFAULT_SEED) -> None:
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError(f"seed must be bytes, got {type(seed).__name__}")
        self._key = _seed_to_key(bytes(seed))
        self._counter = 0

    def _next_block(self) -> bytes:
        block = self._counter.to_bytes(BLOCK_SIZE, "big")
        self._counter += 1
        return self._key.encrypt_block(block)

    def session_key_bytes(self) -> bytes:
        """Produce the raw bytes of a fresh, parity-correct, non-weak key.

        Consumes exactly the same DRBG stream as :func:`session_key` but
        skips the key-schedule expansion — the KDC's batch plane only
        embeds the bytes in tickets/replies and never encrypts with the
        session key itself.
        """
        while True:
            candidate = fix_parity(self._next_block())
            if candidate not in WEAK_KEYS:
                return candidate

    def session_key(self) -> DesKey:
        """Produce a fresh, parity-correct, non-weak DES key."""
        return DesKey(self.session_key_bytes())

    def random_bytes(self, n: int) -> bytes:
        """Produce ``n`` pseudo-random bytes (nonces, confounders)."""
        if n < 0:
            raise ValueError(f"negative byte count {n}")
        out = bytearray()
        while len(out) < n:
            out += self._next_block()
        return bytes(out[:n])

    def random_u32(self) -> int:
        return int.from_bytes(self.random_bytes(4), "big")

    def fork(self, label: bytes) -> "KeyGenerator":
        """Derive an independent generator (e.g. one per KDC replica)."""
        return KeyGenerator(seed=self._key.key_bytes + bytes(label))
